package core

import (
	"errors"
	"fmt"
	"sort"

	"commintent/internal/model"
	"commintent/internal/mpi"
	rt "commintent/internal/runtime"
	"commintent/internal/simnet"
)

// Small-message coalescing: with the managed runtime on, adjacent comm_p2p
// transfers to the same destination inside a comm_parameters region are
// folded into one batch wire message (internal/mpi/batch.go) instead of one
// message each. The directive layer is the only place this is possible —
// the region's clause structure declares, before anything is posted, that
// the transfers are independent and complete together, which is exactly the
// license needed to reorder them into a batch. Raw MPI call sites carry no
// such license; that is the paper's portability argument applied to
// message scheduling.
//
// Correctness rests on the same SPMD program-order discipline the
// directive tag pairing already assumes: both endpoint ranks of a pair
// execute the same directives in the same order, so the receiver's scatter
// queue for a source lists the same parts, in the same order and with the
// same wire sizes, as the sender's accumulator for that destination. The
// receiver therefore never needs to know how the sender partitioned parts
// into batches: each arriving batch declares its member sizes in its
// offset-table header, scatters into the queue's FIFO prefix, and stashes
// any parts whose destinations have not been declared yet (the sender
// flushed earlier than the receiver); stashed payloads are consumed as
// local copies when the destinations appear.
//
// A batch is ONE fabric message, so under fault injection it drops, ghosts
// and retries as one idempotent unit, riding the PR 5 drop⟺ghost
// invariant: both sides observe a lost batch in lockstep and re-post it —
// the whole batch — under an attempt-keyed tag. Give-ups name the batch
// and its member transfers in the post-mortem.

// batchTag is the tag coalesced batch traffic uses, a distinct FIFO stream
// from directiveTag so batched and unbatched transfers on the same pair can
// never cross-match. Retries ride attempt-keyed tags exactly like retry.go:
// batchTag + attempt<<retryTagShift stays far below MaxUserTag.
const batchTag = 12

// batchAcc accumulates pending outgoing parts for one destination.
type batchAcc struct {
	parts []mpi.BatchPart
}

// coalescer is the environment's pending coalesced traffic. It lives on
// the Env, not the region ledger: a place_sync/auto-sync deferral carries
// open batches across region boundaries (widening the coalescing window),
// and a receiver's stash outlives any single region by construction.
type coalescer struct {
	sends     map[int]*batchAcc       // dest comm rank → pending parts, program order
	recvs     map[int]*mpi.BatchQueue // source comm rank → pending scatter destinations
	sendParts int
}

func (co *coalescer) empty() bool {
	if co.sendParts > 0 {
		return false
	}
	for _, q := range co.recvs {
		if q.Pending() > 0 {
			return false
		}
	}
	return true
}

func (co *coalescer) accFor(peer int) *batchAcc {
	if co.sends == nil {
		co.sends = make(map[int]*batchAcc)
	}
	a := co.sends[peer]
	if a == nil {
		a = &batchAcc{}
		co.sends[peer] = a
	}
	return a
}

func (co *coalescer) queueFor(peer int) *mpi.BatchQueue {
	if co.recvs == nil {
		co.recvs = make(map[int]*mpi.BatchQueue)
	}
	q := co.recvs[peer]
	if q == nil {
		q = &mpi.BatchQueue{}
		co.recvs[peer] = q
	}
	return q
}

func sortedRanks[T any](m map[int]T) []int {
	out := make([]int, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// coalesceP2P diverts one two-sided directive's transfers into the
// coalescer if every part qualifies, returning handled=false (and posting
// nothing) when the directive must take the normal emitMPI2Side path. A
// directive coalesces whole or not at all, and eligibility depends only on
// per-part wire sizes and the shared profile — both identical on the two
// endpoint ranks — so the sender and receiver of a transfer always agree.
func (e *Env) coalesceP2P(r *Region, sinfos, rinfos []*bufInfo, count int, doSend, doRecv bool, sendTo, recvFrom int) (bool, error) {
	p := e.comm.SPMD().Profile()
	payloadCap := rt.BatchPayloadCap(p.MPIEagerThreshold, mpi.BatchHeaderMax)
	if payloadCap <= 0 {
		// Eager threshold too small to carry any batch: coalescing off.
		return false, nil
	}
	me := e.comm.Rank()
	if (doSend && sendTo == me) || (doRecv && recvFrom == me) {
		// Self-transfers keep the plain path's local-delivery semantics.
		return false, nil
	}

	// Resolve every part's view and datatype and check eligibility before
	// committing anything to the batch state.
	var sparts, rparts []mpi.BatchPart
	if doSend {
		sparts = make([]mpi.BatchPart, 0, len(sinfos))
		for i, b := range sinfos {
			bp, ok, err := e.batchPart(b, count)
			if err != nil {
				return false, fmt.Errorf("core: sbuf[%d]: %w", i, err)
			}
			if !ok || !rt.PartEligible(bp.Bytes(), payloadCap) {
				return false, nil
			}
			sparts = append(sparts, bp)
		}
	}
	if doRecv {
		rparts = make([]mpi.BatchPart, 0, len(rinfos))
		for i, b := range rinfos {
			bp, ok, err := e.batchPart(b, count)
			if err != nil {
				return false, fmt.Errorf("core: rbuf[%d]: %w", i, err)
			}
			if !ok || !rt.PartEligible(bp.Bytes(), payloadCap) {
				return false, nil
			}
			rparts = append(rparts, bp)
		}
	}

	if doRecv {
		q := e.co.queueFor(recvFrom)
		for i, bp := range rparts {
			if err := q.Add(bp.Buf, bp.Count, bp.Dt); err != nil {
				return true, fmt.Errorf("core: rbuf[%d]: %w", i, err)
			}
		}
	}
	if doSend {
		acc := e.co.accFor(sendTo)
		acc.parts = append(acc.parts, sparts...)
		e.co.sendParts += len(sparts)
	}
	return true, nil
}

// batchPart resolves one buffer into a batch member. ok=false means the
// buffer shape cannot be batched (without being an error).
func (e *Env) batchPart(b *bufInfo, count int) (mpi.BatchPart, bool, error) {
	view, err := b.mpiView(e)
	if err != nil {
		return mpi.BatchPart{}, false, err
	}
	dt, err := e.datatype(b)
	if err != nil {
		return mpi.BatchPart{}, false, err
	}
	n := count
	if !b.isArray {
		n = 1
	}
	return mpi.BatchPart{Buf: view, Count: n, Dt: dt}, true, nil
}

// liveBatch tracks one in-flight batch message through the completion
// rounds of flushCoalesced.
type liveBatch struct {
	req     *mpi.Request
	peer    int // comm rank
	isSend  bool
	attempt int
	parts   []mpi.BatchPart // send side: retained for re-expression (faults only)
	q       *mpi.BatchQueue // recv side
}

// batchPrefix reports how many leading parts fit in one batch under the
// part-count and payload caps, and their total payload bytes.
func batchPrefix(parts []mpi.BatchPart, payloadCap int) (k, bytes int) {
	for k < len(parts) && k < rt.MaxBatchParts {
		b := parts[k].Bytes()
		if k > 0 && bytes+b > payloadCap {
			break
		}
		bytes += b
		k++
	}
	return k, bytes
}

// flushCoalesced drains the environment's pending coalesced traffic: close
// and post every outgoing batch, post one scatter receive per source with
// pending parts, and run completion rounds until everything lands. On a
// fault-injecting fabric the rounds mirror waitWithRetry — deterministic
// backoff, attempt-keyed re-posts, give-up on dead peers or budget — with
// the batch as the unit of retry. Runs before the ledger's Waitall (flush
// posts all sends before any blocking wait, so two ranks flushing
// mid-region cannot deadlock each other any more than the plain path can).
func (e *Env) flushCoalesced(region int) error {
	co := &e.co
	if co.empty() {
		return nil
	}
	rk := e.comm.SPMD()
	p := rk.Profile()
	payloadCap := rt.BatchPayloadCap(p.MPIEagerThreshold, mpi.BatchHeaderMax)
	var live []*liveBatch

	// Stashed payloads first: parts delivered by an earlier, larger batch
	// complete as local copies with no wire traffic at all.
	for _, peer := range sortedRanks(co.recvs) {
		q := co.recvs[peer]
		if q.StashDepth() == 0 || q.Pending() == 0 {
			continue
		}
		cost, consumed, err := q.ConsumeStash(p)
		if err != nil {
			return fmt.Errorf("core: coalesced recv from rank %d: %w", peer, err)
		}
		if consumed > 0 {
			rk.Clock().Advance(cost)
			e.tele.coStash.Add(int64(consumed))
		}
	}

	// Close and post outgoing batches (attempt 1). Partitioning is greedy
	// in program order under static caps, so it is deterministic and needs
	// no agreement with the receiver.
	for _, peer := range sortedRanks(co.sends) {
		acc := co.sends[peer]
		parts := acc.parts
		for len(parts) > 0 {
			k, bytes := batchPrefix(parts, payloadCap)
			batch := parts[:k]
			req, err := e.comm.IsendBatch(batch, peer, batchTag)
			if err != nil {
				return fmt.Errorf("core: coalesced send to rank %d: %w", peer, err)
			}
			lb := &liveBatch{req: req, peer: peer, isSend: true, attempt: 1}
			if e.faults {
				// The accumulator's backing array is recycled after this
				// flush; retries need their own copy of the intent.
				lb.parts = append([]mpi.BatchPart(nil), batch...)
			}
			live = append(live, lb)
			e.tele.coBatches.Inc()
			e.tele.coParts.Add(int64(k))
			e.tele.coSaved.Add(int64(k - 1))
			e.tele.coHeaderBytes.Add(int64(4 + 4*k))
			e.tele.coPayloadBytes.Add(int64(bytes))
			e.tele.coBatchParts.Observe(model.Time(k))
			e.tele.decCoalesce.Inc()
			e.rtTrace.Record(rt.Decision{
				Rank:   rk.ID,
				V:      rk.Now(),
				Domain: "coalesce",
				Key:    fmt.Sprintf("region %d -> rank %d", region, peer),
				From:   fmt.Sprintf("%d msgs", k),
				To:     "1 batch",
				Reason: fmt.Sprintf("%d B payload, %d B header", bytes, 4+4*k),
			})
			parts = parts[k:]
		}
		acc.parts = acc.parts[:0]
	}
	co.sendParts = 0

	// One scatter receive per source with pending parts; successive batches
	// from the same source share the batchTag FIFO stream, so follow-up
	// receives are posted as earlier ones complete.
	for _, peer := range sortedRanks(co.recvs) {
		q := co.recvs[peer]
		if q.Pending() == 0 {
			continue
		}
		req, err := e.comm.IrecvBatch(q, peer, batchTag)
		if err != nil {
			return fmt.Errorf("core: coalesced recv from rank %d: %w", peer, err)
		}
		live = append(live, &liveBatch{req: req, peer: peer, attempt: 1, q: q})
	}

	// Completion rounds.
	reqs := make([]*mpi.Request, 0, len(live))
	for len(live) > 0 {
		reqs = reqs[:0]
		for _, b := range live {
			reqs = append(reqs, b.req)
		}
		if !e.faults {
			if _, err := e.comm.Waitall(reqs); err != nil {
				return err
			}
			next := live[:0]
			for _, b := range live {
				if nb, err := e.nextBatchRecv(b); err != nil {
					return err
				} else if nb {
					next = append(next, b)
				}
			}
			live = next
			continue
		}
		_, errs, firstErr := e.comm.WaitallTimeout(reqs, e.retry.OpTimeout)
		if firstErr != nil && errs == nil {
			return firstErr // hard usage error, not a fabric fault
		}
		next := live[:0]
		var failed []*liveBatch
		maxAttempt := 0
		for i, b := range live {
			if errs == nil || errs[i] == nil {
				if nb, err := e.nextBatchRecv(b); err != nil {
					return err
				} else if nb {
					b.attempt = 1
					next = append(next, b)
				}
				continue
			}
			opErr := errs[i]
			if errors.Is(opErr, mpi.ErrPeerDead) {
				e.tele.giveups.Inc()
				e.reportBatchGiveup(b, region, opErr, "peer declared dead")
				return fmt.Errorf("core: coalesced batch in region %d: %w", region, opErr)
			}
			if b.attempt >= e.retry.MaxAttempts {
				e.tele.giveups.Inc()
				e.reportBatchGiveup(b, region, opErr, "retry budget exhausted")
				return fmt.Errorf("core: coalesced batch in region %d gave up after %d attempts: %w",
					region, b.attempt, opErr)
			}
			failed = append(failed, b)
			if b.attempt > maxAttempt {
				maxAttempt = b.attempt
			}
		}
		if len(failed) > 0 {
			// Lockstep backoff: both sides of every failed batch observed
			// the same fault (drop⟺ghost), so both re-post under the same
			// attempt-keyed tag after the same deterministic pause.
			rk.Clock().Advance(e.retry.Backoff << (maxAttempt - 1))
			for _, b := range failed {
				tag := batchTag + b.attempt<<retryTagShift
				b.attempt++
				var req *mpi.Request
				var err error
				if b.isSend {
					req, err = e.comm.IsendBatch(b.parts, b.peer, tag)
				} else {
					req, err = e.comm.IrecvBatch(b.q, b.peer, tag)
				}
				if err != nil {
					return err
				}
				b.req = req
				next = append(next, b)
				e.tele.retries.Inc()
			}
		}
		live = next
	}
	return nil
}

// nextBatchRecv posts the follow-up scatter receive for a completed batch
// receive whose source still has pending parts (the sender partitioned
// into more batches than one). Reports whether b stays live.
func (e *Env) nextBatchRecv(b *liveBatch) (bool, error) {
	if b.isSend || b.q.Pending() == 0 {
		return false, nil
	}
	req, err := e.comm.IrecvBatch(b.q, b.peer, batchTag)
	if err != nil {
		return false, fmt.Errorf("core: coalesced recv from rank %d: %w", b.peer, err)
	}
	b.req = req
	return true, nil
}

// reportBatchGiveup files the flight-recorder post-mortem for a coalesced
// batch the retry protocol is abandoning, naming the batch and its member
// transfers.
func (e *Env) reportBatchGiveup(b *liveBatch, region int, opErr error, why string) {
	rk := e.comm.SPMD()
	var opName, members string
	if b.isSend {
		opName = "comm_p2p coalesced batch send"
		sizes := make([]string, len(b.parts))
		for i, bp := range b.parts {
			sizes[i] = fmt.Sprintf("%dB", bp.Bytes())
		}
		members = fmt.Sprintf("%d member transfer(s): %v", len(b.parts), sizes)
	} else {
		opName = "comm_p2p coalesced batch recv"
		members = fmt.Sprintf("%d pending member transfer(s)", b.q.Pending())
	}
	kind := simnet.FaultNone
	var fe *mpi.FaultError
	if errors.As(opErr, &fe) {
		kind = fe.Kind
	}
	rk.World().Fabric().ReportFailure(simnet.FailingOp{
		Rank:   rk.ID,
		Op:     opName,
		Peer:   e.comm.WorldRank(b.peer),
		Tag:    -1,
		Region: rk.Endpoint().RegionID(),
		Kind:   kind,
		Reason: fmt.Sprintf("%s for coalesced batch (%s) in comm_p2p region %d after %d attempt(s): %v",
			why, members, region, b.attempt, opErr),
		V: rk.Now(),
	})
}
