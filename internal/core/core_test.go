package core_test

import (
	"errors"
	"strings"
	"testing"

	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/shmem"
	"commintent/internal/spmd"
)

// env builds a full directive environment (world comm + shmem) for a rank.
func env(rk *spmd.Rank) (*core.Env, error) {
	return core.NewEnv(mpi.World(rk), shmem.New(rk))
}

func run(t *testing.T, n int, body func(*spmd.Rank, *core.Env) error) {
	t.Helper()
	if err := spmd.Run(n, model.Uniform(100), func(rk *spmd.Rank) error {
		e, err := env(rk)
		if err != nil {
			return err
		}
		defer e.Close()
		return body(rk, e)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestListing1Ring reproduces the paper's Listing 1: a ring pattern using
// only the required clauses.
func TestListing1Ring(t *testing.T) {
	const n = 8
	for _, target := range []core.Target{core.TargetDefault, core.TargetMPI2Side, core.TargetSHMEM, core.TargetMPI1Side} {
		target := target
		t.Run(target.String(), func(t *testing.T) {
			run(t, n, func(rk *spmd.Rank, e *core.Env) error {
				shm := e.Shmem()
				buf1 := shmem.MustAlloc[float64](shm, 4)
				buf2 := shmem.MustAlloc[float64](shm, 4)
				local := buf1.Local(shm)
				for i := range local {
					local[i] = float64(rk.ID*10 + i)
				}
				prev := (rk.ID - 1 + n) % n
				next := (rk.ID + 1) % n
				if err := e.P2P(
					core.Sender(prev), core.Receiver(next),
					core.SBuf(buf1), core.RBuf(buf2),
					core.WithTarget(target),
				); err != nil {
					return err
				}
				got := buf2.Local(shm)
				for i := range got {
					if got[i] != float64(prev*10+i) {
						t.Errorf("rank %d (%v): buf2[%d] = %v", rk.ID, target, i, got[i])
					}
				}
				return nil
			})
		})
	}
}

// TestListing2EvenOdd reproduces Listing 2: even ranks send to the nearest
// odd rank using sendwhen/receivewhen.
func TestListing2EvenOdd(t *testing.T) {
	const n = 6
	run(t, n, func(rk *spmd.Rank, e *core.Env) error {
		shm := e.Shmem()
		buf1 := shmem.MustAlloc[int64](shm, 2)
		buf2 := shmem.MustAlloc[int64](shm, 2)
		src := buf1.Local(shm)
		src[0], src[1] = int64(rk.ID), int64(rk.ID)*7
		if err := e.P2P(
			core.Sender(rk.ID-1), core.Receiver(rk.ID+1),
			core.SendWhen(rk.ID%2 == 0), core.ReceiveWhen(rk.ID%2 == 1),
			core.SBuf(buf1), core.RBuf(buf2),
		); err != nil {
			return err
		}
		if rk.ID%2 == 1 {
			got := buf2.Local(shm)
			if got[0] != int64(rk.ID-1) || got[1] != int64(rk.ID-1)*7 {
				t.Errorf("rank %d: got %v", rk.ID, got)
			}
		}
		return nil
	})
}

// TestListing3LoopRegion reproduces Listing 3's shape: a comm_parameters
// region asserting clauses for a loop of comm_p2p instances, with
// max_comm_iter and place_sync(END_PARAM_REGION).
func TestListing3LoopRegion(t *testing.T) {
	const n = 4
	const iters = 5
	run(t, n, func(rk *spmd.Rank, e *core.Env) error {
		shm := e.Shmem()
		buf1 := shmem.MustAlloc[float64](shm, iters)
		buf2 := shmem.MustAlloc[float64](shm, iters)
		src := buf1.Local(shm)
		for i := range src {
			src[i] = float64(rk.ID*100 + i)
		}
		err := e.Parameters(func(r *core.Region) error {
			for p := 0; p < iters; p++ {
				if err := r.P2P(core.SBuf(core.At(buf1, p)), core.RBuf(core.At(buf2, p)), core.Count(1)); err != nil {
					return err
				}
			}
			return nil
		},
			core.Sender(rk.ID-1), core.Receiver(rk.ID+1),
			core.SendWhen(rk.ID%2 == 0), core.ReceiveWhen(rk.ID%2 == 1),
			core.MaxCommIter(iters),
			core.PlaceSync(core.EndParamRegion),
		)
		if err != nil {
			return err
		}
		if rk.ID%2 == 1 {
			got := buf2.Local(shm)
			for i := range got {
				if got[i] != float64((rk.ID-1)*100+i) {
					t.Errorf("rank %d: buf2[%d] = %v", rk.ID, i, got[i])
				}
			}
		}
		return nil
	})
}

func TestMaxCommIterExceeded(t *testing.T) {
	errCh := make(chan error, 2)
	_ = spmd.Run(2, model.Uniform(1), func(rk *spmd.Rank) error {
		e, err := env(rk)
		if err != nil {
			return err
		}
		defer e.Close()
		buf := shmem.MustAlloc[float64](e.Shmem(), 1)
		err = e.Parameters(func(r *core.Region) error {
			for i := 0; i < 3; i++ {
				if err := r.P2P(core.SBuf(buf), core.RBuf(buf),
					core.SendWhen(false), core.ReceiveWhen(false)); err != nil {
					return err
				}
			}
			return nil
		}, core.Sender(0), core.Receiver(1), core.MaxCommIter(2))
		errCh <- err
		return nil
	})
	close(errCh)
	for err := range errCh {
		if !errors.Is(err, core.ErrMaxCommIter) {
			t.Errorf("got %v, want ErrMaxCommIter", err)
		}
	}
}

func TestRequiredClauseValidation(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		buf := make([]float64, 1)
		if err := e.P2P(core.Receiver(0), core.SBuf(buf), core.RBuf(buf)); !errors.Is(err, core.ErrMissingClause) {
			t.Errorf("missing sender: %v", err)
		}
		if err := e.P2P(core.Sender(0), core.SBuf(buf), core.RBuf(buf)); !errors.Is(err, core.ErrMissingClause) {
			t.Errorf("missing receiver: %v", err)
		}
		if err := e.P2P(core.Sender(0), core.Receiver(0), core.RBuf(buf)); !errors.Is(err, core.ErrMissingClause) {
			t.Errorf("missing sbuf: %v", err)
		}
		if err := e.P2P(core.Sender(0), core.Receiver(0), core.SBuf(buf)); !errors.Is(err, core.ErrMissingClause) {
			t.Errorf("missing rbuf: %v", err)
		}
		return nil
	})
}

func TestWhenPairingEnforced(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		buf := make([]float64, 1)
		err := e.P2P(core.Sender(0), core.Receiver(1), core.SBuf(buf), core.RBuf(buf),
			core.SendWhen(rk.ID == 0))
		if !errors.Is(err, core.ErrWhenPairing) {
			t.Errorf("lone sendwhen: %v", err)
		}
		err = e.P2P(core.Sender(0), core.Receiver(1), core.SBuf(buf), core.RBuf(buf),
			core.ReceiveWhen(rk.ID == 1))
		if !errors.Is(err, core.ErrWhenPairing) {
			t.Errorf("lone receivewhen: %v", err)
		}
		return nil
	})
}

func TestParamsOnlyClausesRejectedOnP2P(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		buf := make([]float64, 1)
		return e.Parameters(func(r *core.Region) error {
			err := r.P2P(core.Sender(0), core.Receiver(1), core.SBuf(buf), core.RBuf(buf),
				core.PlaceSync(core.EndParamRegion))
			if !errors.Is(err, core.ErrParamsOnlyClause) {
				t.Errorf("place_sync on comm_p2p: %v", err)
			}
			err = r.P2P(core.Sender(0), core.Receiver(1), core.SBuf(buf), core.RBuf(buf),
				core.MaxCommIter(3))
			if !errors.Is(err, core.ErrParamsOnlyClause) {
				t.Errorf("max_comm_iter on comm_p2p: %v", err)
			}
			err = r.P2P(core.Sender(0), core.Receiver(1), core.SBuf(buf), core.RBuf(buf),
				core.Label("x"))
			if !errors.Is(err, core.ErrParamsOnlyClause) {
				t.Errorf("label on comm_p2p: %v", err)
			}
			return nil
		})
	})
}

// TestLabelStampsAndInherits: a labelled region stamps the rank's endpoint
// for the body's duration; an unlabelled nested region inherits the stamp,
// a labelled one overrides and restores it.
func TestLabelStampsAndInherits(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		fab := rk.World().Fabric()
		region := func() string { return fab.RegionLabel(rk.Endpoint().RegionID()) }
		if got := region(); got != "" {
			t.Errorf("region before any label: %q", got)
		}
		err := e.Parameters(func(outer *core.Region) error {
			if got := region(); got != "outer" {
				t.Errorf("inside labelled region: %q, want outer", got)
			}
			if err := e.Parameters(func(*core.Region) error {
				if got := region(); got != "outer" {
					t.Errorf("unlabelled nested region: %q, want inherited outer", got)
				}
				return nil
			}); err != nil {
				return err
			}
			if err := e.Parameters(func(*core.Region) error {
				if got := region(); got != "inner" {
					t.Errorf("labelled nested region: %q, want inner", got)
				}
				return nil
			}, core.Label("inner")); err != nil {
				return err
			}
			if got := region(); got != "outer" {
				t.Errorf("after nested regions: %q, want outer restored", got)
			}
			return nil
		}, core.Label("outer"))
		if err != nil {
			return err
		}
		if got := region(); got != "" {
			t.Errorf("region after exit: %q, want cleared", got)
		}
		return nil
	})
}

func TestBufferListMismatch(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		a := make([]float64, 1)
		b := make([]float64, 1)
		err := e.P2P(core.Sender(0), core.Receiver(1), core.SBuf(a, b), core.RBuf(a))
		if !errors.Is(err, core.ErrBufferMismatch) {
			t.Errorf("mismatched buffer lists: %v", err)
		}
		return nil
	})
}

func TestShmemTargetRequiresSymmetric(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		plain := make([]float64, 4)
		err := e.P2P(core.Sender(0), core.Receiver(1), core.SBuf(plain), core.RBuf(plain),
			core.WithTarget(core.TargetSHMEM),
			core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1))
		if rk.ID <= 1 && !errors.Is(err, core.ErrNotSymmetric) {
			t.Errorf("non-symmetric rbuf on SHMEM target: %v", err)
		}
		return nil
	})
}

// TestCountInferenceSmallestArray checks the paper's rule: with count
// omitted, the message size is the size of the smallest array buffer.
func TestCountInferenceSmallestArray(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		small := make([]float64, 3)
		big := make([]float64, 10)
		for i := range big {
			big[i] = float64(100 + i)
		}
		err := e.P2P(
			core.Sender(0), core.Receiver(1),
			core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
			core.SBuf(big), core.RBuf(small),
		)
		if err != nil {
			return err
		}
		if rk.ID == 1 {
			for i := 0; i < 3; i++ {
				if small[i] != float64(100+i) {
					t.Errorf("small[%d] = %v", i, small[i])
				}
			}
		}
		found := false
		for _, d := range e.Decisions() {
			if d.Kind == "count-infer" && strings.Contains(d.Detail, "inferred 3") {
				found = true
			}
		}
		if !found {
			t.Errorf("no count-infer decision recorded: %v", e.Decisions())
		}
		return nil
	})
}

// TestScalarStructTransfer mirrors Listing 5's first comm_p2p: a composite
// scalar struct moved with an automatically created derived datatype.
type scalarAtomData struct {
	LocalID int32
	Jmt     int32
	Jws     int32
	Xstart  float64
	Rmt     float64
	Header  [80]byte
	Alat    float64
	Efermi  float64
	Vdif    float64
	Ztotss  float64
	Zcorss  float64
	Evec    [3]float64
	Nspin   int32
	Numc    int32
}

func TestScalarStructTransfer(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		v := &scalarAtomData{}
		if rk.ID == 0 {
			v.LocalID = 42
			v.Xstart = 1.5
			copy(v.Header[:], "iron atom")
			v.Evec = [3]float64{0.1, 0.2, 0.3}
			v.Numc = -9
		}
		err := e.P2P(
			core.Sender(0), core.Receiver(1),
			core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
			core.SBuf(v), core.RBuf(v), core.Count(1),
		)
		if err != nil {
			return err
		}
		if rk.ID == 1 {
			if v.LocalID != 42 || v.Xstart != 1.5 || v.Evec[2] != 0.3 || v.Numc != -9 {
				t.Errorf("struct payload corrupt: %+v", v)
			}
			if string(v.Header[:9]) != "iron atom" {
				t.Errorf("header = %q", v.Header[:9])
			}
		}
		// The derived-datatype decision must be recorded once (scope cache).
		count := 0
		for _, d := range e.Decisions() {
			if d.Kind == "datatype" {
				count++
			}
		}
		if count != 1 {
			t.Errorf("datatype decisions = %d, want 1", count)
		}
		return nil
	})
}

// TestDatatypeScopeCache sends the same struct type twice; the derived type
// must be created once and reused, as the paper specifies.
func TestDatatypeScopeCache(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		a, b := &scalarAtomData{}, &scalarAtomData{}
		for _, v := range []*scalarAtomData{a, b} {
			if err := e.P2P(
				core.Sender(0), core.Receiver(1),
				core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
				core.SBuf(v), core.RBuf(v), core.Count(1),
			); err != nil {
				return err
			}
		}
		creates := 0
		for _, d := range e.Decisions() {
			if d.Kind == "datatype" {
				creates++
			}
		}
		if creates != 1 {
			t.Errorf("derived type created %d times, want 1", creates)
		}
		return nil
	})
}

// TestCompositeRestrictions verifies the paper's prohibitions: pointers
// within a composite type and recursively nested composite types.
func TestCompositeRestrictions(t *testing.T) {
	type bad1 struct {
		P *float64
	}
	type inner struct{ X float64 }
	type bad2 struct {
		I inner
	}
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		if err := e.P2P(core.Sender(0), core.Receiver(1),
			core.SBuf(&bad1{}), core.RBuf(&bad1{}), core.Count(1)); err == nil {
			t.Error("pointer field in composite accepted")
		}
		if err := e.P2P(core.Sender(0), core.Receiver(1),
			core.SBuf(&bad2{}), core.RBuf(&bad2{}), core.Count(1)); err == nil {
			t.Error("nested composite accepted")
		}
		return nil
	})
}
