package core

import (
	"fmt"
	"reflect"

	"commintent/internal/mpi"
	"commintent/internal/shmem"
	"commintent/internal/typemap"
)

// symView is a view into a symmetric array at an element offset, produced
// by At. It lets a directive address a sub-range of a symmetric buffer the
// way the paper's examples address &buf[p].
type symView struct {
	s   shmem.AnySlice
	off int
}

// At returns a view of the symmetric array s starting at element offset
// off, usable in SBuf/RBuf clauses. It is the directive-level analogue of
// passing &buf[off].
func At(s shmem.AnySlice, off int) any {
	return symView{s: s, off: off}
}

type bufClass int

const (
	bufPrimSlice bufClass = iota // []float64, []int32, ...
	bufStruct                    // *T or []T with struct T
	bufSym                       // shmem symmetric array (possibly offset)
)

// bufInfo is the lowering's view of one clause buffer.
type bufInfo struct {
	raw   any
	class bufClass

	sym    shmem.AnySlice
	symOff int

	layout *typemap.Layout // for bufStruct

	elems     int // element capacity available (after any offset)
	elemBytes int // wire bytes per element
	goElem    int // in-memory bytes per element (for range trimming)
	isArray   bool
	rng       bufRange

	// Resolved handles, filled lazily and reused across max_comm_iter
	// iterations once the bufInfo itself is cached by the Env: the typed
	// view handed to MPI, the resolved datatype, and the one-sided window.
	view any
	dt   *mpi.Datatype
	win  *mpi.Win
}

// resolveKey identifies a clause buffer for the Env's handle cache. For
// symmetric buffers the (allocation id, view offset) pair is the identity;
// for local slices and struct pointers it is (type, base address, length) —
// the same triple winFor keys windows by. The key is three plain words
// (the type identity is the interface type word, not a reflect.Type), so
// the per-directive cache lookups hash fast.
type resolveKey struct {
	typ uintptr // symTypeWord for symmetric buffers, else the dynamic type identity
	ptr uintptr // base address; the allocation id for symmetric buffers
	n   int     // length (1 for *struct); the view offset for symmetric buffers
}

// symTypeWord marks symmetric-buffer keys. Real type words are pointers
// into the binary's type metadata, never 1, so the spaces cannot collide.
// A whole-array reference and an At(s, 0) view of the same allocation
// intentionally share a key: they classify to the same bufInfo.
const symTypeWord uintptr = 1

// resolveKeyFor derives the cache key for a clause buffer; ok=false means
// the value is not cacheable and must be classified from scratch.
func resolveKeyFor(v any) (resolveKey, bool) {
	switch b := v.(type) {
	case nil:
		return resolveKey{}, false
	case symView:
		return resolveKey{typ: symTypeWord, ptr: uintptr(b.s.SymID()), n: b.off}, true
	case shmem.AnySlice:
		return resolveKey{typ: symTypeWord, ptr: uintptr(b.SymID())}, true
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Slice:
		return resolveKey{typ: typemap.TypeWord(v), ptr: rv.Pointer(), n: rv.Len()}, true
	case reflect.Pointer:
		if rv.IsNil() {
			return resolveKey{}, false
		}
		return resolveKey{typ: typemap.TypeWord(v), ptr: rv.Pointer(), n: 1}, true
	default:
		return resolveKey{}, false
	}
}

// rangeFor returns the buffer's storage range trimmed to the directive's
// resolved count, so independent sub-ranges of one array (e.g. &buf[p] per
// iteration) are correctly seen as non-overlapping.
func (b *bufInfo) rangeFor(count int) bufRange {
	r := b.rng
	if count >= b.elems {
		return r
	}
	if r.sym {
		r.symEnd = r.symStart + count
		return r
	}
	if b.goElem > 0 {
		r.end = r.start + uintptr(count*b.goElem)
	}
	return r
}

// bufRange identifies a buffer's storage for the adjacency / independence
// analysis: two directives whose ranges overlap are dependent and force a
// synchronisation between them.
type bufRange struct {
	sym              bool
	symID            int
	start, end       uintptr // [start,end) in local address space when !sym
	symStart, symEnd int     // [start,end) element range when sym
}

func (r bufRange) overlaps(o bufRange) bool {
	if r.sym != o.sym {
		return false
	}
	if r.sym {
		return r.symID == o.symID && r.symStart < o.symEnd && o.symStart < r.symEnd
	}
	return r.start < o.end && o.start < r.end
}

// maxResolveCacheEntries bounds the handle cache so a loop materialising
// fresh slices every iteration cannot grow it without bound.
const maxResolveCacheEntries = 4096

// classify analyses one clause buffer, consulting the Env's handle cache
// first: across max_comm_iter iterations the same buffers reappear, and a
// hit skips the reflection walk and returns the bufInfo whose resolved
// window/symmetric handles are already warm. A cached struct buffer still
// pays the datatype-cache-hit lookup cost the uncached path would charge,
// so virtual time is unchanged.
func (e *Env) classify(v any) (*bufInfo, error) {
	key, cacheable := resolveKeyFor(v)
	if cacheable {
		if b, ok := e.resolve[key]; ok {
			e.tele.resolveHits.Inc()
			if b.class == bufStruct {
				e.chargeLayout(true)
			}
			return b, nil
		}
	}
	b, err := e.classifySlow(v)
	if err != nil {
		return nil, err
	}
	e.tele.resolveMisses.Inc()
	if cacheable && len(e.resolve) < maxResolveCacheEntries {
		e.resolve[key] = b
	}
	return b, nil
}

// classifySlow analyses one clause buffer from scratch.
func (e *Env) classifySlow(v any) (*bufInfo, error) {
	switch b := v.(type) {
	case nil:
		return nil, fmt.Errorf("core: nil buffer in clause")
	case symView:
		if b.off < 0 || b.off > b.s.Len() {
			return nil, fmt.Errorf("core: At offset %d out of symmetric array of %d", b.off, b.s.Len())
		}
		return &bufInfo{
			raw: v, class: bufSym, sym: b.s, symOff: b.off,
			elems: b.s.Len() - b.off, elemBytes: b.s.ElemBytes(), goElem: b.s.ElemBytes(), isArray: true,
			rng: bufRange{sym: true, symID: b.s.SymID(), symStart: b.off, symEnd: b.s.Len()},
		}, nil
	case shmem.AnySlice:
		return &bufInfo{
			raw: v, class: bufSym, sym: b,
			elems: b.Len(), elemBytes: b.ElemBytes(), goElem: b.ElemBytes(), isArray: true,
			rng: bufRange{sym: true, symID: b.SymID(), symStart: 0, symEnd: b.Len()},
		}, nil
	}
	if k, ok := typemap.SliceKind(v); ok {
		rv := reflect.ValueOf(v)
		n := rv.Len()
		esz := int(rv.Type().Elem().Size())
		var start uintptr
		if n > 0 {
			start = rv.Pointer()
		}
		return &bufInfo{
			raw: v, class: bufPrimSlice,
			elems: n, elemBytes: k.Size(), goElem: esz, isArray: true,
			rng: bufRange{start: start, end: start + uintptr(n*esz)},
		}, nil
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Pointer:
		if rv.IsNil() || rv.Elem().Kind() != reflect.Struct {
			return nil, fmt.Errorf("core: unsupported buffer %T (want symmetric array, primitive slice, *struct or []struct)", v)
		}
		l, hit, err := e.layouts.Get(v)
		if err != nil {
			return nil, err
		}
		e.chargeLayout(hit)
		return &bufInfo{
			raw: v, class: bufStruct, layout: l,
			elems: 1, elemBytes: l.WireSize, goElem: int(rv.Elem().Type().Size()), isArray: false,
			rng: bufRange{start: rv.Pointer(), end: rv.Pointer() + rv.Elem().Type().Size()},
		}, nil
	case reflect.Slice:
		if rv.Type().Elem().Kind() != reflect.Struct {
			return nil, fmt.Errorf("core: unsupported buffer %T", v)
		}
		l, hit, err := e.layouts.Get(v)
		if err != nil {
			return nil, err
		}
		e.chargeLayout(hit)
		var start uintptr
		if rv.Len() > 0 {
			start = rv.Pointer()
		}
		return &bufInfo{
			raw: v, class: bufStruct, layout: l,
			elems: rv.Len(), elemBytes: l.WireSize, goElem: int(rv.Type().Elem().Size()), isArray: true,
			rng: bufRange{start: start, end: start + uintptr(rv.Len())*rv.Type().Elem().Size()},
		}, nil
	default:
		return nil, fmt.Errorf("core: unsupported buffer %T (want symmetric array, primitive slice, *struct or []struct)", v)
	}
}

// datatype resolves the MPI datatype for a classified buffer. The result
// is cached on the bufInfo, so a buffer reused across iterations resolves
// its datatype once; a cached struct datatype still charges the
// scope-cache lookup the uncached path would.
func (e *Env) datatype(b *bufInfo) (*mpi.Datatype, error) {
	if b.dt != nil {
		if b.class == bufStruct {
			e.comm.SPMD().Clock().Advance(e.comm.SPMD().Profile().MPITypeCacheHit)
			e.tele.dtypeHits.Inc()
		}
		return b.dt, nil
	}
	var (
		dt  *mpi.Datatype
		err error
	)
	switch b.class {
	case bufStruct:
		dt, err = e.structType(b.layout.GoType, b.raw)
	case bufPrimSlice:
		k, _ := typemap.SliceKind(b.raw)
		dt, err = basicDatatype(k)
	case bufSym:
		local := b.sym.LocalAny(e.shm)
		k, ok := typemap.SliceKind(local)
		if !ok {
			return nil, fmt.Errorf("core: symmetric array %s has no basic datatype", b.sym.TypeName())
		}
		dt, err = basicDatatype(k)
	default:
		return nil, fmt.Errorf("core: unclassified buffer")
	}
	if err != nil {
		return nil, err
	}
	b.dt = dt
	return dt, nil
}

func basicDatatype(k typemap.Kind) (*mpi.Datatype, error) {
	switch k {
	case typemap.KindInt8:
		return mpi.Int8, nil
	case typemap.KindInt16:
		return mpi.Int16, nil
	case typemap.KindInt32:
		return mpi.Int32, nil
	case typemap.KindInt64:
		return mpi.Int64, nil
	case typemap.KindUint8:
		return mpi.Byte, nil
	case typemap.KindUint16:
		return mpi.Uint16, nil
	case typemap.KindUint32:
		return mpi.Uint32, nil
	case typemap.KindUint64:
		return mpi.Uint64, nil
	case typemap.KindFloat32:
		return mpi.Float32, nil
	case typemap.KindFloat64:
		return mpi.Float64, nil
	default:
		return nil, fmt.Errorf("core: no MPI datatype for element kind %s", k)
	}
}

// mpiView returns the value to hand to the MPI layer for this buffer (for
// symmetric buffers, the local typed slice at the view offset). Symmetric
// views are materialised once — re-slicing through reflection boxes a new
// interface per call — and reused for the buffer's cached lifetime, which
// is sound because a symmetric allocation's backing arrays never move.
func (b *bufInfo) mpiView(e *Env) (any, error) {
	if b.class != bufSym {
		return b.raw, nil
	}
	if b.view != nil {
		return b.view, nil
	}
	local := b.sym.LocalAny(e.shm)
	rv := reflect.ValueOf(local)
	if b.symOff > rv.Len() {
		return nil, fmt.Errorf("core: symmetric view offset %d out of %d", b.symOff, rv.Len())
	}
	b.view = rv.Slice(b.symOff, rv.Len()).Interface()
	return b.view, nil
}

// inferCount implements the paper's count-inference rule: if count is
// omitted and at least one buffer is an array, the message size is the size
// of the smallest array; with only scalar (single-struct) buffers it is 1.
func inferCount(sbufs, rbufs []*bufInfo) (int, error) {
	best := -1
	anyArray := false
	for _, set := range [][]*bufInfo{sbufs, rbufs} {
		for _, b := range set {
			if b.isArray {
				anyArray = true
				if best == -1 || b.elems < best {
					best = b.elems
				}
			}
		}
	}
	if anyArray {
		return best, nil
	}
	// All buffers are scalar composites: a single element.
	for _, set := range [][]*bufInfo{sbufs, rbufs} {
		for _, b := range set {
			if b.class != bufStruct {
				return 0, ErrCountInference
			}
		}
	}
	return 1, nil
}
