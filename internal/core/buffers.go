package core

import (
	"fmt"
	"reflect"

	"commintent/internal/mpi"
	"commintent/internal/shmem"
	"commintent/internal/typemap"
)

// symView is a view into a symmetric array at an element offset, produced
// by At. It lets a directive address a sub-range of a symmetric buffer the
// way the paper's examples address &buf[p].
type symView struct {
	s   shmem.AnySlice
	off int
}

// At returns a view of the symmetric array s starting at element offset
// off, usable in SBuf/RBuf clauses. It is the directive-level analogue of
// passing &buf[off].
func At(s shmem.AnySlice, off int) any {
	return symView{s: s, off: off}
}

type bufClass int

const (
	bufPrimSlice bufClass = iota // []float64, []int32, ...
	bufStruct                    // *T or []T with struct T
	bufSym                       // shmem symmetric array (possibly offset)
)

// bufInfo is the lowering's view of one clause buffer.
type bufInfo struct {
	raw   any
	class bufClass

	sym    shmem.AnySlice
	symOff int

	layout *typemap.Layout // for bufStruct

	elems     int // element capacity available (after any offset)
	elemBytes int // wire bytes per element
	goElem    int // in-memory bytes per element (for range trimming)
	isArray   bool
	rng       bufRange
}

// rangeFor returns the buffer's storage range trimmed to the directive's
// resolved count, so independent sub-ranges of one array (e.g. &buf[p] per
// iteration) are correctly seen as non-overlapping.
func (b *bufInfo) rangeFor(count int) bufRange {
	r := b.rng
	if count >= b.elems {
		return r
	}
	if r.sym {
		r.symEnd = r.symStart + count
		return r
	}
	if b.goElem > 0 {
		r.end = r.start + uintptr(count*b.goElem)
	}
	return r
}

// bufRange identifies a buffer's storage for the adjacency / independence
// analysis: two directives whose ranges overlap are dependent and force a
// synchronisation between them.
type bufRange struct {
	sym              bool
	symID            int
	start, end       uintptr // [start,end) in local address space when !sym
	symStart, symEnd int     // [start,end) element range when sym
}

func (r bufRange) overlaps(o bufRange) bool {
	if r.sym != o.sym {
		return false
	}
	if r.sym {
		return r.symID == o.symID && r.symStart < o.symEnd && o.symStart < r.symEnd
	}
	return r.start < o.end && o.start < r.end
}

// classify analyses one clause buffer.
func (e *Env) classify(v any) (*bufInfo, error) {
	switch b := v.(type) {
	case nil:
		return nil, fmt.Errorf("core: nil buffer in clause")
	case symView:
		if b.off < 0 || b.off > b.s.Len() {
			return nil, fmt.Errorf("core: At offset %d out of symmetric array of %d", b.off, b.s.Len())
		}
		return &bufInfo{
			raw: v, class: bufSym, sym: b.s, symOff: b.off,
			elems: b.s.Len() - b.off, elemBytes: b.s.ElemBytes(), goElem: b.s.ElemBytes(), isArray: true,
			rng: bufRange{sym: true, symID: b.s.SymID(), symStart: b.off, symEnd: b.s.Len()},
		}, nil
	case shmem.AnySlice:
		return &bufInfo{
			raw: v, class: bufSym, sym: b,
			elems: b.Len(), elemBytes: b.ElemBytes(), goElem: b.ElemBytes(), isArray: true,
			rng: bufRange{sym: true, symID: b.SymID(), symStart: 0, symEnd: b.Len()},
		}, nil
	}
	if k, ok := typemap.SliceKind(v); ok {
		rv := reflect.ValueOf(v)
		n := rv.Len()
		esz := int(rv.Type().Elem().Size())
		var start uintptr
		if n > 0 {
			start = rv.Pointer()
		}
		return &bufInfo{
			raw: v, class: bufPrimSlice,
			elems: n, elemBytes: k.Size(), goElem: esz, isArray: true,
			rng: bufRange{start: start, end: start + uintptr(n*esz)},
		}, nil
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Pointer:
		if rv.IsNil() || rv.Elem().Kind() != reflect.Struct {
			return nil, fmt.Errorf("core: unsupported buffer %T (want symmetric array, primitive slice, *struct or []struct)", v)
		}
		l, hit, err := e.layouts.Get(v)
		if err != nil {
			return nil, err
		}
		e.chargeLayout(hit)
		return &bufInfo{
			raw: v, class: bufStruct, layout: l,
			elems: 1, elemBytes: l.WireSize, goElem: int(rv.Elem().Type().Size()), isArray: false,
			rng: bufRange{start: rv.Pointer(), end: rv.Pointer() + rv.Elem().Type().Size()},
		}, nil
	case reflect.Slice:
		if rv.Type().Elem().Kind() != reflect.Struct {
			return nil, fmt.Errorf("core: unsupported buffer %T", v)
		}
		l, hit, err := e.layouts.Get(v)
		if err != nil {
			return nil, err
		}
		e.chargeLayout(hit)
		var start uintptr
		if rv.Len() > 0 {
			start = rv.Pointer()
		}
		return &bufInfo{
			raw: v, class: bufStruct, layout: l,
			elems: rv.Len(), elemBytes: l.WireSize, goElem: int(rv.Type().Elem().Size()), isArray: true,
			rng: bufRange{start: start, end: start + uintptr(rv.Len())*rv.Type().Elem().Size()},
		}, nil
	default:
		return nil, fmt.Errorf("core: unsupported buffer %T (want symmetric array, primitive slice, *struct or []struct)", v)
	}
}

// datatype resolves the MPI datatype for a classified buffer.
func (e *Env) datatype(b *bufInfo) (*mpi.Datatype, error) {
	switch b.class {
	case bufStruct:
		return e.structType(b.layout.GoType, b.raw)
	case bufPrimSlice:
		k, _ := typemap.SliceKind(b.raw)
		return basicDatatype(k)
	case bufSym:
		local := b.sym.LocalAny(e.shm)
		k, ok := typemap.SliceKind(local)
		if !ok {
			return nil, fmt.Errorf("core: symmetric array %s has no basic datatype", b.sym.TypeName())
		}
		return basicDatatype(k)
	}
	return nil, fmt.Errorf("core: unclassified buffer")
}

func basicDatatype(k typemap.Kind) (*mpi.Datatype, error) {
	switch k {
	case typemap.KindInt8:
		return mpi.Int8, nil
	case typemap.KindInt16:
		return mpi.Int16, nil
	case typemap.KindInt32:
		return mpi.Int32, nil
	case typemap.KindInt64:
		return mpi.Int64, nil
	case typemap.KindUint8:
		return mpi.Byte, nil
	case typemap.KindUint32:
		return mpi.Uint32, nil
	case typemap.KindUint64:
		return mpi.Uint64, nil
	case typemap.KindFloat32:
		return mpi.Float32, nil
	case typemap.KindFloat64:
		return mpi.Float64, nil
	default:
		return nil, fmt.Errorf("core: no MPI datatype for element kind %s", k)
	}
}

// mpiView returns the value to hand to the MPI layer for this buffer (for
// symmetric buffers, the local typed slice at the view offset).
func (b *bufInfo) mpiView(e *Env) (any, error) {
	if b.class != bufSym {
		return b.raw, nil
	}
	local := b.sym.LocalAny(e.shm)
	rv := reflect.ValueOf(local)
	if b.symOff > rv.Len() {
		return nil, fmt.Errorf("core: symmetric view offset %d out of %d", b.symOff, rv.Len())
	}
	return rv.Slice(b.symOff, rv.Len()).Interface(), nil
}

// inferCount implements the paper's count-inference rule: if count is
// omitted and at least one buffer is an array, the message size is the size
// of the smallest array; with only scalar (single-struct) buffers it is 1.
func inferCount(sbufs, rbufs []*bufInfo) (int, error) {
	best := -1
	anyArray := false
	for _, set := range [][]*bufInfo{sbufs, rbufs} {
		for _, b := range set {
			if b.isArray {
				anyArray = true
				if best == -1 || b.elems < best {
					best = b.elems
				}
			}
		}
	}
	if anyArray {
		return best, nil
	}
	// All buffers are scalar composites: a single element.
	for _, set := range [][]*bufInfo{sbufs, rbufs} {
		for _, b := range set {
			if b.class != bufStruct {
				return 0, ErrCountInference
			}
		}
	}
	return 1, nil
}
