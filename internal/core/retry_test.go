package core_test

import (
	"testing"
	"time"

	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/simnet"
	"commintent/internal/spmd"
	"commintent/internal/telemetry"
)

// faultRun executes body over a fabric with the given fault config (scoped
// to user point-to-point traffic) and telemetry attached.
func faultRun(t *testing.T, n int, cfg simnet.FaultConfig, body func(*spmd.Rank, *core.Env) error) *telemetry.Telemetry {
	t.Helper()
	w, err := spmd.NewWorld(n, model.Uniform(100))
	if err != nil {
		t.Fatal(err)
	}
	cfg.TagSpan, cfg.UserSpan = mpi.P2PFaultScope()
	w.Fabric().SetFaults(cfg)
	tele := telemetry.New(n, 0)
	w.SetTelemetry(tele)
	if err := w.Run(func(rk *spmd.Rank) error {
		c := mpi.World(rk)
		c.SetWatchdog(2 * time.Second)
		e, err := core.NewEnv(c, nil)
		if err != nil {
			return err
		}
		defer e.Close()
		return body(rk, e)
	}); err != nil {
		t.Fatal(err)
	}
	return tele
}

// ringIter runs one directive ring exchange and validates the payload.
func ringIter(t *testing.T, rk *spmd.Rank, e *core.Env, n, iter int) error {
	t.Helper()
	prev := (rk.ID - 1 + n) % n
	next := (rk.ID + 1) % n
	src := []float64{float64(rk.ID*1000 + iter)}
	dst := []float64{-1}
	if err := e.P2P(
		core.Sender(prev), core.Receiver(next),
		core.SBuf(src), core.RBuf(dst),
		core.WithTarget(core.TargetMPI2Side),
	); err != nil {
		return err
	}
	if want := float64(prev*1000 + iter); dst[0] != want {
		t.Errorf("rank %d iter %d: got %v, want %v", rk.ID, iter, dst[0], want)
	}
	return nil
}

// TestRetryRecoversDrops: a ring of comm_p2p directives over a fabric
// dropping 20% of user messages completes with correct data — every lost
// transfer is re-sent under an attempt-keyed tag — and the retry counter
// shows the recovery happened.
func TestRetryRecoversDrops(t *testing.T) {
	const n, iters = 8, 6
	tele := faultRun(t, n, simnet.FaultConfig{Seed: 42, Drop: 0.2},
		func(rk *spmd.Rank, e *core.Env) error {
			for iter := 0; iter < iters; iter++ {
				if err := ringIter(t, rk, e, n, iter); err != nil {
					return err
				}
			}
			return nil
		})
	var retries, giveups int64
	reg := tele.Registry()
	for r := 0; r < n; r++ {
		retries += reg.CounterValue("core_p2p_retries_total", telemetry.Rank(r))
		giveups += reg.CounterValue("core_p2p_giveups_total", telemetry.Rank(r))
	}
	if retries == 0 {
		t.Error("20% drop over 96 transfers produced no retries")
	}
	if giveups != 0 {
		t.Errorf("giveups = %d, want 0", giveups)
	}
}

// TestRetryDeterministic: same seed, same program → bit-identical virtual
// times even through the retry rounds; a different seed diverges.
func TestRetryDeterministic(t *testing.T) {
	const n, iters = 8, 4
	times := func(seed uint64) model.Time {
		w, err := spmd.NewWorld(n, model.Uniform(100))
		if err != nil {
			t.Fatal(err)
		}
		cfg := simnet.FaultConfig{Seed: seed, Drop: 0.15}
		cfg.TagSpan, cfg.UserSpan = mpi.P2PFaultScope()
		w.Fabric().SetFaults(cfg)
		if err := w.Run(func(rk *spmd.Rank) error {
			c := mpi.World(rk)
			c.SetWatchdog(2 * time.Second)
			e, err := core.NewEnv(c, nil)
			if err != nil {
				return err
			}
			defer e.Close()
			for iter := 0; iter < iters; iter++ {
				if err := ringIter(t, rk, e, n, iter); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxVirtualTime()
	}
	a, b := times(7), times(7)
	if a != b {
		t.Errorf("same seed: %d != %d", a, b)
	}
	if c := times(8); c == a {
		t.Logf("different seed produced identical time %d (possible but suspicious)", c)
	}
}

// TestRetryGivesUpOnDeadPeer: transfers involving a dead rank fail with a
// typed ErrPeerDead instead of burning the retry budget or hanging; the
// healthy pair in the same world is unaffected.
func TestRetryGivesUpOnDeadPeer(t *testing.T) {
	const n = 4
	w, err := spmd.NewWorld(n, model.Uniform(100))
	if err != nil {
		t.Fatal(err)
	}
	cfg := simnet.FaultConfig{Seed: 3, DeadRanks: map[int]bool{3: true}}
	cfg.TagSpan, cfg.UserSpan = mpi.P2PFaultScope()
	w.Fabric().SetFaults(cfg)
	errs := make([]error, n)
	if err := w.Run(func(rk *spmd.Rank) error {
		c := mpi.World(rk)
		// Short watchdog: rank 2's receive from the dead (and absent) rank 3
		// can only resolve by cancellation, so the watchdog is on the test's
		// critical path.
		c.SetWatchdog(200 * time.Millisecond)
		e, err := core.NewEnv(c, nil)
		if err != nil {
			return err
		}
		defer e.Close()
		if rk.ID == 3 {
			return nil // dead rank does not participate
		}
		src := []float64{float64(rk.ID)}
		dst := []float64{-1}
		if rk.ID == 2 {
			// Rank 2 exchanges with the dead rank 3.
			errs[2] = e.P2P(
				core.Sender(3), core.Receiver(3),
				core.SBuf(src), core.RBuf(dst),
				core.WithTarget(core.TargetMPI2Side),
			)
			return nil
		}
		// Ranks 0 and 1 exchange healthily.
		peer := 1 - rk.ID
		errs[rk.ID] = e.P2P(
			core.Sender(peer), core.Receiver(peer),
			core.SBuf(src), core.RBuf(dst),
			core.WithTarget(core.TargetMPI2Side),
		)
		if errs[rk.ID] == nil && dst[0] != float64(peer) {
			t.Errorf("rank %d: got %v, want %v", rk.ID, dst[0], float64(peer))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Errorf("healthy pair errored: %v, %v", errs[0], errs[1])
	}
	if !mpi.IsFault(errs[2]) {
		t.Errorf("rank 2 facing dead peer: err = %v, want typed fault", errs[2])
	}
}
