package core_test

import (
	"fmt"
	"testing"
	"time"

	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	rt "commintent/internal/runtime"
	"commintent/internal/simnet"
	"commintent/internal/spmd"
	"commintent/internal/telemetry"
)

// ringExchange runs nxfer small transfers around a ring inside one region
// and validates every delivered element. The transfers are independent (no
// buffer reuse), so with coalescing on they should fold into batches.
func ringExchange(t *testing.T, rk *spmd.Rank, e *core.Env, n, nxfer, iter int) error {
	t.Helper()
	prev := (rk.ID - 1 + n) % n
	next := (rk.ID + 1) % n
	srcs := make([][]float64, nxfer)
	dsts := make([][]float64, nxfer)
	for i := range srcs {
		srcs[i] = []float64{float64(rk.ID*10000 + iter*100 + i), 0.5}
		dsts[i] = make([]float64, 2)
	}
	err := e.Parameters(func(r *core.Region) error {
		for i := 0; i < nxfer; i++ {
			if err := r.P2P(
				core.Sender(prev), core.Receiver(next),
				core.SBuf(srcs[i]), core.RBuf(dsts[i]),
				core.WithTarget(core.TargetMPI2Side),
			); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i := range dsts {
		if want := float64(prev*10000 + iter*100 + i); dsts[i][0] != want || dsts[i][1] != 0.5 {
			t.Errorf("rank %d iter %d xfer %d: got %v, want [%v 0.5]", rk.ID, iter, i, dsts[i], want)
		}
	}
	return nil
}

// TestCoalesceEquivalence: the same directive program delivers identical
// data with coalescing on, and the telemetry proves batching actually
// happened (messages saved, batch sizes > 1).
func TestCoalesceEquivalence(t *testing.T) {
	defer rt.Override(rt.Config{Coalesce: true})()
	const n, nxfer, iters = 4, 6, 3
	w, err := spmd.NewWorld(n, model.GeminiLike())
	if err != nil {
		t.Fatal(err)
	}
	tele := telemetry.New(n, 0)
	w.SetTelemetry(tele)
	if err := w.Run(func(rk *spmd.Rank) error {
		e, err := core.NewEnv(mpi.World(rk), nil)
		if err != nil {
			return err
		}
		defer e.Close()
		for iter := 0; iter < iters; iter++ {
			if err := ringExchange(t, rk, e, n, nxfer, iter); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	reg := tele.Registry()
	var batches, parts, saved int64
	for r := 0; r < n; r++ {
		batches += reg.CounterValue("runtime_coalesce_batches_total", telemetry.Rank(r))
		parts += reg.CounterValue("runtime_coalesce_parts_total", telemetry.Rank(r))
		saved += reg.CounterValue("runtime_coalesce_msgs_saved_total", telemetry.Rank(r))
	}
	if wantParts := int64(n * nxfer * iters); parts != wantParts {
		t.Errorf("coalesced parts = %d, want %d (all transfers eligible)", parts, wantParts)
	}
	if batches == 0 || saved != parts-batches {
		t.Errorf("batches=%d saved=%d parts=%d: inconsistent accounting", batches, saved, parts)
	}
	if saved == 0 {
		t.Error("coalescing saved no messages")
	}
}

// TestCoalesceSavesVirtualTime: the managed runtime makes the same program
// finish in strictly less virtual time than the static lowering — the
// mechanism behind the Fig. 4 speedup.
func TestCoalesceSavesVirtualTime(t *testing.T) {
	elapse := func(cfg rt.Config) model.Time {
		defer rt.Override(cfg)()
		w, err := spmd.NewWorld(4, model.GeminiLike())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(rk *spmd.Rank) error {
			e, err := core.NewEnv(mpi.World(rk), nil)
			if err != nil {
				return err
			}
			defer e.Close()
			for iter := 0; iter < 4; iter++ {
				if err := ringExchange(t, rk, e, 4, 8, iter); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxVirtualTime()
	}
	off, on := elapse(rt.Config{}), elapse(rt.Config{Coalesce: true})
	if on >= off {
		t.Errorf("coalescing on: %d ns >= off: %d ns", on, off)
	}
}

// TestCoalesceDeterministicTrace: same program, same profile → identical
// decision-trace fingerprints across runs; the replay contract.
func TestCoalesceDeterministicTrace(t *testing.T) {
	fp := func() uint64 {
		defer rt.Override(rt.Config{Coalesce: true})()
		w, err := spmd.NewWorld(4, model.GeminiLike())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(rk *spmd.Rank) error {
			e, err := core.NewEnv(mpi.World(rk), nil)
			if err != nil {
				return err
			}
			defer e.Close()
			for iter := 0; iter < 3; iter++ {
				if err := ringExchange(t, rk, e, 4, 5, iter); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		tr := mpi.ManagedTrace(w)
		if tr.Len() == 0 {
			t.Fatal("no decisions recorded with coalescing on")
		}
		return tr.Fingerprint()
	}
	if a, b := fp(), fp(); a != b {
		t.Errorf("same-seed decision traces differ: %x != %x", a, b)
	}
}

// TestCoalesceDependentFlush: a directive whose source was the previous
// directive's destination depends on it; the pinned ranges must force the
// pending batch to complete before the dependent transfer is expressed.
func TestCoalesceDependentFlush(t *testing.T) {
	defer rt.Override(rt.Config{Coalesce: true})()
	const n = 2
	if err := spmd.Run(n, model.GeminiLike(), func(rk *spmd.Rank) error {
		e, err := core.NewEnv(mpi.World(rk), nil)
		if err != nil {
			return err
		}
		defer e.Close()
		peer := 1 - rk.ID
		a := []float64{float64(100 + rk.ID)}
		b := make([]float64, 1)
		c := make([]float64, 1)
		if err := e.Parameters(func(r *core.Region) error {
			// Transfer 1: a -> peer's b.
			if err := r.P2P(
				core.Sender(peer), core.Receiver(peer),
				core.SBuf(a), core.RBuf(b),
				core.WithTarget(core.TargetMPI2Side),
			); err != nil {
				return err
			}
			// Transfer 2 sends b onward: it depends on transfer 1's arrival.
			return r.P2P(
				core.Sender(peer), core.Receiver(peer),
				core.SBuf(b), core.RBuf(c),
				core.WithTarget(core.TargetMPI2Side),
			)
		}); err != nil {
			return err
		}
		// b holds the peer's a; c holds the value b had after transfer 1 on
		// the peer — which is this rank's own a value, round-tripped.
		if want := float64(100 + peer); b[0] != want {
			return fmt.Errorf("rank %d: b = %v, want %v", rk.ID, b[0], want)
		}
		if want := float64(100 + rk.ID); c[0] != want {
			return fmt.Errorf("rank %d: c = %v, want %v (dependent transfer saw stale data)", rk.ID, c[0], want)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCoalesceMixedSizes: transfers above the part-size cap take the plain
// per-message path while small ones batch, in the same region, and both
// complete correctly in one flush.
func TestCoalesceMixedSizes(t *testing.T) {
	defer rt.Override(rt.Config{Coalesce: true})()
	const n = 2
	big := rt.MaxCoalescePartBytes/8 + 8 // float64 count above the cap
	if err := spmd.Run(n, model.GeminiLike(), func(rk *spmd.Rank) error {
		e, err := core.NewEnv(mpi.World(rk), nil)
		if err != nil {
			return err
		}
		defer e.Close()
		peer := 1 - rk.ID
		smallS := []float64{float64(rk.ID) + 0.25}
		smallD := make([]float64, 1)
		bigS := make([]float64, big)
		for i := range bigS {
			bigS[i] = float64(rk.ID*1000 + i)
		}
		bigD := make([]float64, big)
		if err := e.Parameters(func(r *core.Region) error {
			if err := r.P2P(
				core.Sender(peer), core.Receiver(peer),
				core.SBuf(smallS), core.RBuf(smallD),
				core.WithTarget(core.TargetMPI2Side),
			); err != nil {
				return err
			}
			return r.P2P(
				core.Sender(peer), core.Receiver(peer),
				core.SBuf(bigS), core.RBuf(bigD),
				core.WithTarget(core.TargetMPI2Side),
			)
		}); err != nil {
			return err
		}
		if smallD[0] != float64(peer)+0.25 {
			return fmt.Errorf("rank %d: small transfer got %v", rk.ID, smallD[0])
		}
		for i := range bigD {
			if bigD[i] != float64(peer*1000+i) {
				return fmt.Errorf("rank %d: big transfer wrong at %d: %v", rk.ID, i, bigD[i])
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAutoSyncDefers: with automatic sync placement on, a region with no
// place_sync clause defers its completion like an explicit
// END_ADJ_PARAM_REGIONS, the environment reports the deferral, and
// FlushDeferred delivers the data.
func TestAutoSyncDefers(t *testing.T) {
	defer rt.Override(rt.Config{AutoSync: true})()
	const n = 2
	w, err := spmd.NewWorld(n, model.GeminiLike())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(rk *spmd.Rank) error {
		e, err := core.NewEnv(mpi.World(rk), nil)
		if err != nil {
			return err
		}
		defer e.Close()
		peer := 1 - rk.ID
		src := []float64{float64(rk.ID + 7)}
		dst := make([]float64, 1)
		if err := e.Parameters(func(r *core.Region) error {
			return r.P2P(
				core.Sender(peer), core.Receiver(peer),
				core.SBuf(src), core.RBuf(dst),
				core.WithTarget(core.TargetMPI2Side),
			)
		}); err != nil {
			return err
		}
		if !e.HasDeferred() {
			return fmt.Errorf("rank %d: auto-sync did not defer the region's completion", rk.ID)
		}
		if err := e.FlushDeferred(); err != nil {
			return err
		}
		if want := float64(peer + 7); dst[0] != want {
			return fmt.Errorf("rank %d: got %v, want %v", rk.ID, dst[0], want)
		}
		// An explicit place_sync still wins over auto-sync.
		if err := e.Parameters(func(r *core.Region) error {
			return r.P2P(
				core.Sender(peer), core.Receiver(peer),
				core.SBuf(src), core.RBuf(dst),
				core.WithTarget(core.TargetMPI2Side),
			)
		}, core.PlaceSync(core.EndParamRegion)); err != nil {
			return err
		}
		if e.HasDeferred() {
			return fmt.Errorf("rank %d: explicit END_PARAM_REGION was deferred", rk.ID)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range mpi.ManagedTrace(w).Snapshot() {
		if d.Domain == "autosync" {
			found = true
		}
	}
	if !found {
		t.Error("no autosync decision recorded")
	}
}

// TestManagedRuntimeClause: the per-region managed_runtime clause overrides
// the process-wide setting in both directions, and is rejected on comm_p2p.
func TestManagedRuntimeClause(t *testing.T) {
	defer rt.Override(rt.Config{})() // process-wide OFF
	const n = 2
	w, err := spmd.NewWorld(n, model.GeminiLike())
	if err != nil {
		t.Fatal(err)
	}
	tele := telemetry.New(n, 0)
	w.SetTelemetry(tele)
	if err := w.Run(func(rk *spmd.Rank) error {
		e, err := core.NewEnv(mpi.World(rk), nil)
		if err != nil {
			return err
		}
		defer e.Close()
		peer := 1 - rk.ID
		src := []float64{float64(rk.ID)}
		dst := make([]float64, 1)
		// Region opts IN while the process is off.
		if err := e.Parameters(func(r *core.Region) error {
			return r.P2P(
				core.Sender(peer), core.Receiver(peer),
				core.SBuf(src), core.RBuf(dst),
				core.WithTarget(core.TargetMPI2Side),
			)
		}, core.ManagedRuntime(rt.Config{Coalesce: true})); err != nil {
			return err
		}
		if dst[0] != float64(peer) {
			return fmt.Errorf("rank %d: got %v", rk.ID, dst[0])
		}
		// managed_runtime is a comm_parameters-only clause.
		err = e.P2P(
			core.Sender(peer), core.Receiver(peer),
			core.SBuf(src), core.RBuf(dst),
			core.WithTarget(core.TargetMPI2Side),
			core.ManagedRuntime(rt.Config{}),
		)
		if err == nil {
			return fmt.Errorf("managed_runtime accepted on comm_p2p")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var batches int64
	for r := 0; r < n; r++ {
		batches += tele.Registry().CounterValue("runtime_coalesce_batches_total", telemetry.Rank(r))
	}
	if batches == 0 {
		t.Error("region-scoped managed_runtime clause produced no batches")
	}
}

// TestCoalesceChaos: a fabric dropping user messages loses whole batches,
// which retry as one idempotent unit — data lands intact, retries are
// observed, nothing gives up, and same-seed runs agree on virtual time.
func TestCoalesceChaos(t *testing.T) {
	for _, drop := range []float64{0.01, 0.05} {
		t.Run(fmt.Sprintf("drop=%v", drop), func(t *testing.T) {
			times := make([]model.Time, 2)
			for attempt := range times {
				defer rt.Override(rt.Config{Coalesce: true})()
				const n, nxfer, iters = 4, 6, 16
				w, err := spmd.NewWorld(n, model.Uniform(100))
				if err != nil {
					t.Fatal(err)
				}
				cfg := simnet.FaultConfig{Seed: 99, Drop: drop}
				cfg.TagSpan, cfg.UserSpan = mpi.P2PFaultScope()
				w.Fabric().SetFaults(cfg)
				tele := telemetry.New(n, 0)
				w.SetTelemetry(tele)
				if err := w.Run(func(rk *spmd.Rank) error {
					c := mpi.World(rk)
					c.SetWatchdog(2 * time.Second)
					e, err := core.NewEnv(c, nil)
					if err != nil {
						return err
					}
					defer e.Close()
					for iter := 0; iter < iters; iter++ {
						if err := ringExchange(t, rk, e, n, nxfer, iter); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				reg := tele.Registry()
				var batches, retries, giveups int64
				for r := 0; r < n; r++ {
					batches += reg.CounterValue("runtime_coalesce_batches_total", telemetry.Rank(r))
					retries += reg.CounterValue("core_p2p_retries_total", telemetry.Rank(r))
					giveups += reg.CounterValue("core_p2p_giveups_total", telemetry.Rank(r))
				}
				if batches == 0 {
					t.Error("no batches under chaos")
				}
				if drop >= 0.05 && retries == 0 {
					t.Error("5% drop produced no batch retries (seed is fixed, so this is deterministic)")
				}
				if giveups != 0 {
					t.Errorf("giveups = %d, want 0", giveups)
				}
				times[attempt] = w.MaxVirtualTime()
			}
			if times[0] != times[1] {
				t.Errorf("same-seed chaos runs diverged: %d != %d", times[0], times[1])
			}
		})
	}
}
