package core_test

import (
	"testing"

	"commintent/internal/core"
	"commintent/internal/spmd"
)

type cell struct {
	ID  int32
	Val float64
	Vec [2]float64
}

// TestStructSliceBuffers moves a slice of composites through a directive:
// the derived datatype applies per element and count selects how many move.
func TestStructSliceBuffers(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		src := make([]cell, 5)
		dst := make([]cell, 5)
		if rk.ID == 0 {
			for i := range src {
				src[i] = cell{ID: int32(i), Val: float64(i) * 1.5, Vec: [2]float64{float64(i), -float64(i)}}
			}
		}
		if err := e.P2P(
			core.Sender(0), core.Receiver(1),
			core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
			core.SBuf(src), core.RBuf(dst),
			core.Count(3),
		); err != nil {
			return err
		}
		if rk.ID == 1 {
			for i := 0; i < 3; i++ {
				want := cell{ID: int32(i), Val: float64(i) * 1.5, Vec: [2]float64{float64(i), -float64(i)}}
				if dst[i] != want {
					t.Errorf("dst[%d] = %+v, want %+v", i, dst[i], want)
				}
			}
			for i := 3; i < 5; i++ {
				if dst[i] != (cell{}) {
					t.Errorf("dst[%d] written beyond count: %+v", i, dst[i])
				}
			}
		}
		return nil
	})
}

// TestStructSliceCountInference: with count omitted, the smallest array
// buffer (the struct slice) sets the element count.
func TestStructSliceCountInference(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		src := make([]cell, 4)
		dst := make([]cell, 4)
		if rk.ID == 0 {
			for i := range src {
				src[i].ID = int32(100 + i)
			}
		}
		if err := e.P2P(
			core.Sender(0), core.Receiver(1),
			core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
			core.SBuf(src), core.RBuf(dst),
		); err != nil {
			return err
		}
		if rk.ID == 1 {
			for i := range dst {
				if dst[i].ID != int32(100+i) {
					t.Errorf("dst[%d].ID = %d", i, dst[i].ID)
				}
			}
		}
		return nil
	})
}

// TestMixedScalarAndSliceBuffers pairs a scalar composite with a composite
// slice in one directive (distinct counts per pair shape: the scalar
// moves 1 element regardless of the directive count).
func TestMixedScalarAndSliceBuffers(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		hdr := &cell{}
		body := make([]cell, 3)
		hdrDst := &cell{}
		bodyDst := make([]cell, 3)
		if rk.ID == 0 {
			hdr.ID = 99
			for i := range body {
				body[i].ID = int32(i + 1)
			}
		}
		if err := e.P2P(
			core.Sender(0), core.Receiver(1),
			core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
			core.SBuf(hdr, body), core.RBuf(hdrDst, bodyDst),
			core.Count(3),
		); err != nil {
			return err
		}
		if rk.ID == 1 {
			if hdrDst.ID != 99 {
				t.Errorf("header = %+v", hdrDst)
			}
			for i := range bodyDst {
				if bodyDst[i].ID != int32(i+1) {
					t.Errorf("body[%d] = %+v", i, bodyDst[i])
				}
			}
		}
		return nil
	})
}
