package core_test

import (
	"errors"
	"fmt"
	"testing"

	"commintent/internal/core"
	"commintent/internal/shmem"
	"commintent/internal/spmd"
)

// TestDynamicClauseExpressions uses the *Fn clause forms re-evaluated per
// comm_p2p execution, as the paper's clause expressions over loop
// variables are.
func TestDynamicClauseExpressions(t *testing.T) {
	const n = 4
	run(t, n, func(rk *spmd.Rank, e *core.Env) error {
		shm := e.Shmem()
		src := shmem.MustAlloc[int64](shm, n)
		dst := shmem.MustAlloc[int64](shm, n)
		s := src.Local(shm)
		for i := range s {
			s[i] = int64(rk.ID*10 + i)
		}
		// Rank 0 sends slot p to rank p, for p = 1..n-1, with the receiver
		// expression re-evaluated from the loop variable each iteration.
		p := 0
		err := e.Parameters(func(r *core.Region) error {
			for p = 1; p < n; p++ {
				if err := r.P2P(
					core.SBuf(core.At(src, p)), core.RBuf(core.At(dst, 0)),
					core.Count(1),
					core.ReceiverFn(func() int { return p }),
					core.SenderFn(func() int { return 0 }),
					core.SendWhenFn(func() bool { return rk.ID == 0 }),
					core.ReceiveWhenFn(func() bool { return rk.ID == p }),
				); err != nil {
					return err
				}
			}
			return nil
		}, core.MaxCommIter(n))
		if err != nil {
			return err
		}
		if rk.ID != 0 {
			if got := dst.Local(shm)[0]; got != int64(rk.ID) {
				t.Errorf("rank %d got %d", rk.ID, got)
			}
		}
		return nil
	})
}

// TestCountFnEvaluatedPerInstance re-evaluates the count clause.
func TestCountFnEvaluatedPerInstance(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		shm := e.Shmem()
		src := shmem.MustAlloc[float64](shm, 8)
		dst := shmem.MustAlloc[float64](shm, 8)
		s := src.Local(shm)
		for i := range s {
			s[i] = float64(i + 1)
		}
		count := 0
		err := e.Parameters(func(r *core.Region) error {
			for count = 1; count <= 3; count++ {
				off := count*2 - 2
				if err := r.P2P(
					core.SBuf(core.At(src, off)), core.RBuf(core.At(dst, off)),
					core.CountFn(func() int { return count }),
				); err != nil {
					return err
				}
			}
			return nil
		},
			core.Sender(0), core.Receiver(1),
			core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
			core.MaxCommIter(3),
		)
		if err != nil {
			return err
		}
		if rk.ID == 1 {
			want := []float64{1, 0, 3, 4, 5, 6, 7, 0}
			got := dst.Local(shm)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("dst = %v, want %v", got, want)
					break
				}
			}
		}
		return nil
	})
}

// TestClosedEnvRejected: directives after Close must fail.
func TestClosedEnvRejected(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		if err := e.Close(); err != nil {
			return err
		}
		buf := make([]float64, 1)
		if err := e.P2P(core.Sender(0), core.Receiver(1), core.SBuf(buf), core.RBuf(buf),
			core.SendWhen(false), core.ReceiveWhen(false)); !errors.Is(err, core.ErrClosed) {
			t.Errorf("P2P after Close: %v", err)
		}
		if err := e.Parameters(func(r *core.Region) error { return nil }); !errors.Is(err, core.ErrClosed) {
			t.Errorf("Parameters after Close: %v", err)
		}
		if err := e.Close(); err != nil {
			t.Errorf("double Close: %v", err)
		}
		return nil
	})
}

// TestBodyErrorPropagates: an error from the region body surfaces and the
// posted requests are still drained.
func TestBodyErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		buf := make([]float64, 1)
		err := e.Parameters(func(r *core.Region) error {
			if err := r.P2P(core.SBuf(buf), core.RBuf(buf)); err != nil {
				return err
			}
			return boom
		},
			core.Sender(0), core.Receiver(1),
			core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
		)
		if !errors.Is(err, boom) {
			t.Errorf("body error lost: %v", err)
		}
		// The environment remains usable: the failed region flushed.
		return e.P2P(
			core.Sender(0), core.Receiver(1),
			core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
			core.SBuf(buf), core.RBuf(buf),
		)
	})
}

// TestOverlapBodyErrorPropagates: an error from the overlap body surfaces.
func TestOverlapBodyErrorPropagates(t *testing.T) {
	boom := errors.New("body failed")
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		buf := make([]float64, 1)
		err := e.P2POverlap(func() error { return boom },
			core.Sender(0), core.Receiver(1),
			core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
			core.SBuf(buf), core.RBuf(buf),
		)
		if !errors.Is(err, boom) {
			t.Errorf("overlap body error lost: %v", err)
		}
		return nil
	})
}

// TestDecisionRecordingBounded: decision recording must not grow without
// bound in long-running loops.
func TestDecisionRecordingBounded(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank, e *core.Env) error {
		buf := make([]float64, 4)
		other := make([]float64, 4)
		for i := 0; i < 6000; i++ {
			if err := e.P2P(
				core.Sender(0), core.Receiver(1),
				core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
				core.SBuf(buf), core.RBuf(other),
			); err != nil {
				return err
			}
		}
		if n := len(e.Decisions()); n > 5000 {
			t.Errorf("decision log grew to %d entries", n)
		}
		return nil
	})
}

// TestTargetStrings covers the keyword rendering used in dumps and errors.
func TestTargetStrings(t *testing.T) {
	for target, want := range map[core.Target]string{
		core.TargetDefault:  "default(mpi-2side)",
		core.TargetMPI2Side: "TARGET_COMM_MPI_2SIDE",
		core.TargetMPI1Side: "TARGET_COMM_MPI_1SIDE",
		core.TargetSHMEM:    "TARGET_COMM_SHMEM",
		core.TargetAuto:     "auto",
	} {
		if target.String() != want {
			t.Errorf("%d: %q want %q", int(target), target.String(), want)
		}
	}
	for p, want := range map[core.SyncPlacement]string{
		core.EndParamRegion:       "END_PARAM_REGION",
		core.BeginNextParamRegion: "BEGIN_NEXT_PARAM_REGION",
		core.EndAdjParamRegions:   "END_ADJ_PARAM_REGIONS",
	} {
		if p.String() != want {
			t.Errorf("%q want %q", p.String(), want)
		}
	}
	for k, want := range map[core.CollKind]string{
		core.OneToMany: "one-to-many",
		core.ManyToOne: "many-to-one",
		core.AllToAll:  "all-to-all",
	} {
		if k.String() != want {
			t.Errorf("%q want %q", k.String(), want)
		}
	}
	d := core.Decision{Region: 2, Kind: "sync", Detail: "x"}
	if got := fmt.Sprint(d); got == "" {
		t.Error("empty decision string")
	}
}
