package core

import (
	"errors"
	"fmt"

	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/simnet"
)

// Retry semantics for comm_p2p on a faulty fabric. The directive layer is
// the right place for this recovery: the *intent* — which buffer must reach
// which peer — survives in the region's clauses, so a lost transfer can be
// re-expressed from intent, which raw MPI call sites cannot do (the paper's
// portability argument applied to fault tolerance).
//
// The protocol is lockstep and acknowledgement-free, built on the fabric's
// drop⟺ghost invariant: when an attempt is dropped, the sender's request
// fails synchronously and the receiver's request fails via the delivered
// ghost — both sides observe the same per-attempt outcome. Each retry is
// re-posted under an attempt-keyed tag (directiveTag + attempt<<retryTagShift),
// so a retry can never be satisfied by a stale duplicate of an earlier
// attempt and the re-send is idempotent. Both sides run the same rounds with
// the same outcomes, so the pairing never desynchronises and virtual time
// stays deterministic.

// retryTagShift positions the attempt number inside the user tag space:
// directiveTag + attempt<<16 stays far below MaxUserTag for every permitted
// attempt count.
const retryTagShift = 16

// maxRetryAttempts bounds RetryPolicy.MaxAttempts so attempt-keyed tags fit
// the user tag space.
const maxRetryAttempts = 15

// RetryPolicy governs comm_p2p recovery on a fault-injecting fabric.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per transfer (the original
	// plus retries). At most maxRetryAttempts.
	MaxAttempts int
	// Backoff is the virtual pause before re-sending; attempt k waits
	// Backoff << (k-1), a standard exponential schedule.
	Backoff model.Time
	// OpTimeout is the per-round virtual deadline handed to WaitallTimeout.
	OpTimeout model.Time
}

// defaultRetryPolicy scales the schedule to the machine's latency.
func defaultRetryPolicy(p *model.Profile) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 5,
		Backoff:     4 * p.MPILatency,
		OpTimeout:   64 * p.MPILatency,
	}
}

// SetRetryPolicy overrides the environment's retry schedule. Zero fields
// keep their defaults; MaxAttempts is clamped to the tag-space bound.
func (e *Env) SetRetryPolicy(rp RetryPolicy) {
	if rp.MaxAttempts > 0 {
		e.retry.MaxAttempts = min(rp.MaxAttempts, maxRetryAttempts)
	}
	if rp.Backoff > 0 {
		e.retry.Backoff = rp.Backoff
	}
	if rp.OpTimeout > 0 {
		e.retry.OpTimeout = rp.OpTimeout
	}
}

// resendOp is the intent behind one ledger request — everything needed to
// re-express the transfer if the fabric eats an attempt.
type resendOp struct {
	view   any
	count  int
	dt     *mpi.Datatype
	peer   int
	isSend bool
}

// reportGiveup files a flight-recorder post-mortem for a comm_p2p transfer
// the retry protocol is abandoning — the terminal failure, not the per-
// attempt faults the protocol absorbs. The dump captures the failing intent
// (direction, peer, directive region) plus both ranks' recent event tails
// and unmatched frontiers.
func (e *Env) reportGiveup(op resendOp, region, attempts int, opErr error, why string) {
	rk := e.comm.SPMD()
	opName := "comm_p2p recv"
	if op.isSend {
		opName = "comm_p2p send"
	}
	kind := simnet.FaultNone
	var fe *mpi.FaultError
	if errors.As(opErr, &fe) {
		kind = fe.Kind
	}
	rk.World().Fabric().ReportFailure(simnet.FailingOp{
		Rank:   rk.ID,
		Op:     opName,
		Peer:   e.comm.WorldRank(op.peer),
		Tag:    -1,
		Region: rk.Endpoint().RegionID(),
		Kind:   kind,
		Reason: fmt.Sprintf("%s in comm_p2p region %d after %d attempt(s): %v", why, region, attempts, opErr),
		V:      rk.Now(),
	})
}

// waitWithRetry is flush's completion path on a fault-injecting fabric: a
// round-structured Waitall that re-sends failed transfers under attempt-
// keyed tags until everything lands, a peer proves dead, or the attempt
// budget runs out. l.resend[i] must describe l.reqs[i].
func (e *Env) waitWithRetry(l *ledger, region int) error {
	reqs := l.reqs
	ops := l.resend
	attempt := make([]int, len(reqs)) // tries so far per op
	for i := range attempt {
		attempt[i] = 1
	}
	for {
		_, errs, firstErr := e.comm.WaitallTimeout(reqs, e.retry.OpTimeout)
		if firstErr == nil {
			return nil
		}
		if errs == nil {
			return firstErr // hard usage error, not a fabric fault
		}
		var failed []int
		maxAttempt := 0
		for i, opErr := range errs {
			if opErr == nil {
				continue
			}
			if errors.Is(opErr, mpi.ErrPeerDead) {
				// A dead peer is never coming back; retrying would only
				// burn the budget.
				e.tele.giveups.Inc()
				e.reportGiveup(ops[i], region, attempt[i], opErr, "peer declared dead")
				return fmt.Errorf("core: comm_p2p region %d: %w", region, opErr)
			}
			if attempt[i] >= e.retry.MaxAttempts {
				e.tele.giveups.Inc()
				e.reportGiveup(ops[i], region, attempt[i], opErr, "retry budget exhausted")
				return fmt.Errorf("core: comm_p2p region %d gave up after %d attempts: %w",
					region, attempt[i], opErr)
			}
			failed = append(failed, i)
			if attempt[i] > maxAttempt {
				maxAttempt = attempt[i]
			}
		}
		// Both sides of every failed transfer observed the same fault (the
		// drop⟺ghost invariant), so both arrive here in the same round and
		// back off by the same deterministic amount.
		e.comm.SPMD().Clock().Advance(e.retry.Backoff << (maxAttempt - 1))
		for _, i := range failed {
			op := ops[i]
			tag := directiveTag + attempt[i]<<retryTagShift
			attempt[i]++
			var req *mpi.Request
			var err error
			if op.isSend {
				req, err = e.comm.Isend(op.view, op.count, op.dt, op.peer, tag)
			} else {
				req, err = e.comm.Irecv(op.view, op.count, op.dt, op.peer, tag)
			}
			if err != nil {
				return err
			}
			reqs[i] = req
			e.tele.retries.Inc()
		}
	}
}
