package shmem_test

import (
	"testing"

	"commintent/internal/shmem"
	"commintent/internal/spmd"
)

// TestFetchAddConcurrentSum: every PE atomically adds to a counter on PE 0;
// the total must be exact regardless of interleaving.
func TestFetchAddConcurrentSum(t *testing.T) {
	const n = 8
	const addsPerPE = 50
	run(t, n, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		counter := shmem.MustAlloc[int64](ctx, 1)
		for i := 0; i < addsPerPE; i++ {
			if _, err := counter.FetchAdd(ctx, 0, 0, 1); err != nil {
				return err
			}
		}
		ctx.BarrierAll()
		if rk.ID == 0 {
			if got := counter.Local(ctx)[0]; got != n*addsPerPE {
				t.Errorf("counter = %d, want %d", got, n*addsPerPE)
			}
		}
		return nil
	})
}

// TestFetchAddReturnsOldValues: the set of returned old values must be a
// permutation of 0..k-1 for a lone adder.
func TestFetchAddReturnsOldValues(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		counter := shmem.MustAlloc[int64](ctx, 1)
		if rk.ID == 1 {
			for i := int64(0); i < 10; i++ {
				old, err := counter.FetchAdd(ctx, 0, 0, 3)
				if err != nil {
					return err
				}
				if old != 3*i {
					t.Errorf("FetchAdd old = %d, want %d", old, 3*i)
				}
			}
		}
		ctx.BarrierAll()
		return nil
	})
}

// TestSwap exchanges a value and observes the previous content.
func TestSwap(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		cell := shmem.MustAlloc[float64](ctx, 1)
		cell.Local(ctx)[0] = float64(10 * (rk.ID + 1))
		ctx.BarrierAll()
		if rk.ID == 0 {
			old, err := cell.Swap(ctx, 1, 0, 99)
			if err != nil {
				return err
			}
			if old != 20 {
				t.Errorf("swap old = %v", old)
			}
		}
		ctx.BarrierAll()
		if rk.ID == 1 && cell.Local(ctx)[0] != 99 {
			t.Errorf("cell = %v after swap", cell.Local(ctx)[0])
		}
		return nil
	})
}

// TestCompareSwapLock implements the classic SHMEM spin lock with cswap and
// checks mutual exclusion via a protected non-atomic counter.
func TestCompareSwapLock(t *testing.T) {
	const n = 6
	const incs = 25
	run(t, n, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		lock := shmem.MustAlloc[int64](ctx, 1)
		shared := shmem.MustAlloc[int64](ctx, 1)
		for i := 0; i < incs; i++ {
			// Acquire: spin on cswap(0 -> myPE+1) at PE 0.
			for {
				old, err := lock.CompareSwap(ctx, 0, 0, 0, int64(rk.ID+1))
				if err != nil {
					return err
				}
				if old == 0 {
					break
				}
			}
			// Critical section: non-atomic read-modify-write on PE 0.
			tmp := make([]int64, 1)
			if err := shared.Get(ctx, 0, tmp, 0); err != nil {
				return err
			}
			tmp[0]++
			if err := shared.Put(ctx, 0, tmp, 0); err != nil {
				return err
			}
			ctx.Quiet()
			// Release.
			if _, err := lock.Swap(ctx, 0, 0, 0); err != nil {
				return err
			}
		}
		ctx.BarrierAll()
		if rk.ID == 0 {
			if got := shared.Local(ctx)[0]; got != n*incs {
				t.Errorf("protected counter = %d, want %d", got, n*incs)
			}
		}
		return nil
	})
}

// TestFetchAddWakesWaitUntil: an AMO on a waited-on flag must wake the
// waiter.
func TestFetchAddWakesWaitUntil(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		flag := shmem.MustAlloc[int64](ctx, 1)
		if rk.ID == 0 {
			_, err := flag.FetchAdd(ctx, 1, 0, 5)
			return err
		}
		return flag.WaitUntil(ctx, 0, shmem.CmpGE, 5)
	})
}

// TestAMOBoundsChecked rejects bad PEs and offsets.
func TestAMOBoundsChecked(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		cell := shmem.MustAlloc[int64](ctx, 2)
		if rk.ID == 0 {
			if _, err := cell.FetchAdd(ctx, 9, 0, 1); err == nil {
				t.Error("bad PE accepted by FetchAdd")
			}
			if _, err := cell.Swap(ctx, 1, 7, 1); err == nil {
				t.Error("bad offset accepted by Swap")
			}
			if _, err := cell.CompareSwap(ctx, -1, 0, 0, 1); err == nil {
				t.Error("bad PE accepted by CompareSwap")
			}
		}
		ctx.BarrierAll()
		return nil
	})
}

// TestGetRace is a plain Get while other PEs put elsewhere — exercising the
// board lock paths together.
func TestMixedTraffic(t *testing.T) {
	const n = 4
	run(t, n, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		arr := shmem.MustAlloc[int64](ctx, n)
		cnt := shmem.MustAlloc[int64](ctx, 1)
		if err := arr.P(ctx, (rk.ID+1)%n, rk.ID, int64(rk.ID)); err != nil {
			return err
		}
		if _, err := cnt.FetchAdd(ctx, 0, 0, 1); err != nil {
			return err
		}
		ctx.BarrierAll()
		if rk.ID == 0 && cnt.Local(ctx)[0] != n {
			t.Errorf("count = %d", cnt.Local(ctx)[0])
		}
		prev := (rk.ID - 1 + n) % n
		if arr.Local(ctx)[prev] != int64(prev) {
			t.Errorf("PE %d slot %d = %d", rk.ID, prev, arr.Local(ctx)[prev])
		}
		return nil
	})
}
