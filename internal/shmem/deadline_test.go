package shmem_test

import (
	"errors"
	"testing"
	"time"

	"commintent/internal/shmem"
	"commintent/internal/simnet"
	"commintent/internal/spmd"
)

// TestWaitUntilTimeoutNeverSignalled: a wait_until whose signal never comes
// fails with simnet.ErrDeadline at the virtual deadline instead of hanging.
func TestWaitUntilTimeoutNeverSignalled(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		flag := shmem.MustAlloc[int64](ctx, 1)
		if rk.ID != 0 {
			ctx.BarrierAll() // match the trailing barrier below
			return nil       // never signals
		}
		ctx.SetWatchdog(50 * time.Millisecond)
		start := rk.Clock().Now()
		const timeout = 7000
		err := flag.WaitUntilTimeout(ctx, 0, shmem.CmpGE, 1, timeout)
		if !errors.Is(err, simnet.ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
		if got := rk.Clock().Now(); got != start+timeout {
			t.Errorf("clock = %d, want deadline %d", got, start+timeout)
		}
		ctx.BarrierAll()
		return nil
	})
}

// TestWaitUntilTimeoutSignalled: when the signal does arrive, the timeout
// variant behaves exactly like WaitUntil — same result, same virtual time.
func TestWaitUntilTimeoutSignalled(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		flag := shmem.MustAlloc[int64](ctx, 2)
		if rk.ID == 1 {
			if err := flag.P(ctx, 0, 0, 5); err != nil {
				return err
			}
			return flag.P(ctx, 0, 1, 5)
		}
		if err := flag.WaitUntilTimeout(ctx, 0, shmem.CmpGE, 5, 1_000_000); err != nil {
			t.Errorf("WaitUntilTimeout: %v", err)
		}
		v1 := rk.Clock().Now()
		if err := flag.WaitUntil(ctx, 1, shmem.CmpGE, 5); err != nil {
			t.Errorf("WaitUntil: %v", err)
		}
		if flag.Local(ctx)[0] != 5 || flag.Local(ctx)[1] != 5 {
			t.Errorf("payload = %v", flag.Local(ctx))
		}
		_ = v1
		return nil
	})
}
