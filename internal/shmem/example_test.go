package shmem_test

import (
	"fmt"
	"sync"

	"commintent/internal/model"
	"commintent/internal/shmem"
	"commintent/internal/spmd"
)

// Example demonstrates the one-sided substrate: a put into a symmetric
// array followed by the flag handshake the directive layer generates for
// its SHMEM target.
func Example() {
	var once sync.Once
	err := spmd.Run(2, model.GeminiLike(), func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		data := shmem.MustAlloc[float64](ctx, 3)
		flag := shmem.MustAlloc[int64](ctx, 1)
		if ctx.MyPE() == 0 {
			if err := data.Put(ctx, 1, []float64{1.5, 2.5, 3.5}, 0); err != nil {
				return err
			}
			ctx.Quiet() // remote completion of the data put
			return flag.P(ctx, 1, 0, 1)
		}
		if err := flag.WaitUntil(ctx, 0, shmem.CmpGE, 1); err != nil {
			return err
		}
		once.Do(func() { fmt.Println("PE 1 sees", data.Local(ctx)) })
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: PE 1 sees [1.5 2.5 3.5]
}

// ExampleSlice_FetchAdd builds a global counter with the atomic
// fetch-and-add.
func ExampleSlice_FetchAdd() {
	var once sync.Once
	err := spmd.Run(4, model.GeminiLike(), func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		counter := shmem.MustAlloc[int64](ctx, 1)
		if _, err := counter.FetchAdd(ctx, 0, 0, int64(rk.ID+1)); err != nil {
			return err
		}
		ctx.BarrierAll()
		if ctx.MyPE() == 0 {
			once.Do(func() { fmt.Println("counter =", counter.Local(ctx)[0]) })
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: counter = 10
}
