package shmem

import (
	"fmt"

	"commintent/internal/coll"
)

// Team collectives in the OpenSHMEM style: broadcast and collect over an
// explicit PE list (the generalisation of the strided active sets of
// SHMEM's shmem_broadcast/shmem_fcollect). All listed PEs must call the
// routine with the same list; symmetric source and destination arrays are
// required, and the routines synchronise the team on completion.
//
// The put *schedule* is picked by the shared algorithm-selection layer
// (internal/coll). A put's virtual cost is independent of its target-visit
// order — the clock advance per put is constant and the destination
// boards' last-arrival tracking is a commutative max — so reordering the
// schedule is observationally pure on virtual time; it only changes which
// destination boards contend on the wall clock. With no real hardware
// parallelism the selector returns Direct and the loops run in team order,
// byte-identical to the original path.

// putSchedule returns the starting offset into the team for this PE's put
// loop: 0 for the in-order schedules, the caller's own team index for the
// contention-avoiding rotated schedule (every PE starts its sweep at a
// different destination, so the per-board locks are visited staggered
// instead of in lockstep).
func putSchedule(k coll.Kind, team []int, self, bytes int) int {
	switch coll.Choose(k, len(team), bytes) {
	case coll.Direct, coll.Linear:
		return 0
	default:
		return self
	}
}

// Broadcast copies count elements of src (on root) into dst on every PE of
// the team, at offset 0. src and dst may alias on the root.
func Broadcast[T Elem](c *Ctx, team []int, root int, src, dst *Slice[T], count int) error {
	if err := validateTeam(c, team); err != nil {
		return fmt.Errorf("shmem: Broadcast: %w", err)
	}
	if !contains(team, root) {
		return fmt.Errorf("shmem: Broadcast: root PE %d not in team", root)
	}
	if count > src.Len() || count > dst.Len() {
		return fmt.Errorf("shmem: Broadcast: count %d exceeds buffers (%d/%d)", count, src.Len(), dst.Len())
	}
	if c.MyPE() == root {
		local := src.Local(c)[:count]
		start := putSchedule(coll.Bcast, team, indexOf(team, root), count*src.esz)
		for k := range team {
			pe := team[(start+k)%len(team)]
			if pe == root {
				if src != dst {
					copy(dst.Local(c)[:count], local)
				}
				continue
			}
			if err := dst.Put(c, pe, local, 0); err != nil {
				return err
			}
		}
	}
	return c.TeamBarrier(team)
}

// Collect concatenates count elements of src from every team PE, in team
// order, into dst on every PE (an fcollect). dst must hold
// len(team)*count elements.
func Collect[T Elem](c *Ctx, team []int, src, dst *Slice[T], count int) error {
	if err := validateTeam(c, team); err != nil {
		return fmt.Errorf("shmem: Collect: %w", err)
	}
	if count > src.Len() {
		return fmt.Errorf("shmem: Collect: count %d exceeds source %d", count, src.Len())
	}
	if len(team)*count > dst.Len() {
		return fmt.Errorf("shmem: Collect: need %d elements in destination, have %d", len(team)*count, dst.Len())
	}
	idx := indexOf(team, c.MyPE())
	local := src.Local(c)[:count]
	start := putSchedule(coll.Allgather, team, idx, count*src.esz)
	for k := range team {
		pe := team[(start+k)%len(team)]
		if pe == c.MyPE() {
			copy(dst.Local(c)[idx*count:(idx+1)*count], local)
			continue
		}
		if err := dst.Put(c, pe, local, idx*count); err != nil {
			return err
		}
	}
	return c.TeamBarrier(team)
}

// ReduceSum sums count elements of src element-wise across the team into
// dst on every PE (to_all with the sum operator). Uses a collect into a
// scratch symmetric array owned by the caller.
func ReduceSum[T Elem](c *Ctx, team []int, src, dst, scratch *Slice[T], count int) error {
	if len(team)*count > scratch.Len() {
		return fmt.Errorf("shmem: ReduceSum: scratch needs %d elements, has %d", len(team)*count, scratch.Len())
	}
	if count > dst.Len() {
		return fmt.Errorf("shmem: ReduceSum: count %d exceeds destination %d", count, dst.Len())
	}
	if err := Collect(c, team, src, scratch, count); err != nil {
		return err
	}
	all := scratch.Local(c)
	out := dst.Local(c)[:count]
	for i := range out {
		var sum T
		for k := range team {
			sum += all[k*count+i]
		}
		out[i] = sum
	}
	// Charge the local reduction arithmetic.
	c.rk.Compute(c.prof().MemcpyTime(len(team) * count * int(src.esz)))
	return c.TeamBarrier(team)
}

func validateTeam(c *Ctx, team []int) error {
	if len(team) == 0 {
		return fmt.Errorf("empty team")
	}
	if !contains(team, c.MyPE()) {
		return fmt.Errorf("caller PE %d not in team", c.MyPE())
	}
	for _, pe := range team {
		if pe < 0 || pe >= c.NPEs() {
			return fmt.Errorf("PE %d out of range", pe)
		}
	}
	return nil
}

func contains(team []int, pe int) bool {
	return indexOf(team, pe) >= 0
}

func indexOf(team []int, pe int) int {
	for i, p := range team {
		if p == pe {
			return i
		}
	}
	return -1
}
