package shmem

import (
	"fmt"

	"commintent/internal/simnet"
)

// Atomic memory operations on symmetric arrays, the analogues of
// shmem_fadd / shmem_swap / shmem_cswap. Each is a blocking round trip to
// the target PE and is atomic with respect to every other AMO and put on
// that PE (they serialise on the PE's RMA board lock). A completed AMO also
// wakes WaitUntil waiters on the target.

// amoClock charges the round-trip cost of one AMO and counts it.
func (c *Ctx) amoClock() {
	p := c.prof()
	clk := c.clock()
	clk.Advance(p.ShmemGetOverhead)
	clk.Advance(p.ShmemWireTime(0) + p.ShmemWireTime(8))
	c.tele.amos.Inc()
}

// FetchAdd atomically adds delta to PE pe's element at off and returns the
// previous value.
func (s *Slice[T]) FetchAdd(c *Ctx, pe int, off int, delta T) (T, error) {
	var zero T
	if pe < 0 || pe >= c.NPEs() {
		return zero, fmt.Errorf("shmem: FetchAdd on PE %d of %d", pe, c.NPEs())
	}
	if off < 0 || off >= s.n {
		return zero, fmt.Errorf("shmem: FetchAdd offset %d of %d", off, s.n)
	}
	board := s.ws.rma[pe]
	board.mu.Lock()
	buf := s.on(pe)
	old := buf[off]
	buf[off] = old + delta
	board.version++
	if v := c.clock().Now(); v > board.lastArrival {
		board.lastArrival = v
	}
	board.wake()
	board.mu.Unlock()
	c.amoClock()
	c.emit(simnet.Event{Rank: c.rk.ID, Kind: simnet.EvPut, Peer: pe, Bytes: s.esz, V: c.clock().Now()})
	return old, nil
}

// Swap atomically replaces PE pe's element at off with v and returns the
// previous value.
func (s *Slice[T]) Swap(c *Ctx, pe int, off int, v T) (T, error) {
	var zero T
	if pe < 0 || pe >= c.NPEs() {
		return zero, fmt.Errorf("shmem: Swap on PE %d of %d", pe, c.NPEs())
	}
	if off < 0 || off >= s.n {
		return zero, fmt.Errorf("shmem: Swap offset %d of %d", off, s.n)
	}
	board := s.ws.rma[pe]
	board.mu.Lock()
	buf := s.on(pe)
	old := buf[off]
	buf[off] = v
	board.version++
	if now := c.clock().Now(); now > board.lastArrival {
		board.lastArrival = now
	}
	board.wake()
	board.mu.Unlock()
	c.amoClock()
	return old, nil
}

// CompareSwap atomically sets PE pe's element at off to v if it currently
// equals cond, returning the previous value (the swap happened iff the
// return equals cond).
func (s *Slice[T]) CompareSwap(c *Ctx, pe int, off int, cond, v T) (T, error) {
	var zero T
	if pe < 0 || pe >= c.NPEs() {
		return zero, fmt.Errorf("shmem: CompareSwap on PE %d of %d", pe, c.NPEs())
	}
	if off < 0 || off >= s.n {
		return zero, fmt.Errorf("shmem: CompareSwap offset %d of %d", off, s.n)
	}
	board := s.ws.rma[pe]
	board.mu.Lock()
	buf := s.on(pe)
	old := buf[off]
	if old == cond {
		buf[off] = v
		board.version++
		if now := c.clock().Now(); now > board.lastArrival {
			board.lastArrival = now
		}
		board.wake()
	}
	board.mu.Unlock()
	c.amoClock()
	return old, nil
}
