package shmem_test

import (
	"testing"

	"commintent/internal/shmem"
	"commintent/internal/spmd"
)

func TestBroadcastTeam(t *testing.T) {
	const n = 6
	team := []int{1, 3, 5}
	run(t, n, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		src := shmem.MustAlloc[float64](ctx, 4)
		dst := shmem.MustAlloc[float64](ctx, 4)
		if rk.ID == 3 {
			copy(src.Local(ctx), []float64{9, 8, 7, 6})
		}
		if shmemContains(team, rk.ID) {
			if err := shmem.Broadcast(ctx, team, 3, src, dst, 4); err != nil {
				return err
			}
			got := dst.Local(ctx)
			for i, want := range []float64{9, 8, 7, 6} {
				if got[i] != want {
					t.Errorf("PE %d dst[%d] = %v", rk.ID, i, got[i])
				}
			}
		}
		ctx.BarrierAll()
		// PEs outside the team must be untouched.
		if !shmemContains(team, rk.ID) {
			if dst.Local(ctx)[0] != 0 {
				t.Errorf("non-team PE %d touched: %v", rk.ID, dst.Local(ctx))
			}
		}
		return nil
	})
}

func TestBroadcastRootAlias(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		buf := shmem.MustAlloc[int64](ctx, 2)
		if rk.ID == 0 {
			buf.Local(ctx)[0] = 77
		}
		if err := shmem.Broadcast(ctx, []int{0, 1}, 0, buf, buf, 2); err != nil {
			return err
		}
		if buf.Local(ctx)[0] != 77 {
			t.Errorf("PE %d: %v", rk.ID, buf.Local(ctx))
		}
		return nil
	})
}

func TestCollectTeam(t *testing.T) {
	const n = 4
	team := []int{0, 1, 2, 3}
	run(t, n, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		src := shmem.MustAlloc[int64](ctx, 2)
		dst := shmem.MustAlloc[int64](ctx, 2*n)
		s := src.Local(ctx)
		s[0], s[1] = int64(rk.ID), int64(rk.ID*10)
		if err := shmem.Collect(ctx, team, src, dst, 2); err != nil {
			return err
		}
		got := dst.Local(ctx)
		for r := 0; r < n; r++ {
			if got[2*r] != int64(r) || got[2*r+1] != int64(r*10) {
				t.Errorf("PE %d segment %d = %v", rk.ID, r, got[2*r:2*r+2])
			}
		}
		return nil
	})
}

func TestReduceSumTeam(t *testing.T) {
	const n = 5
	team := []int{0, 1, 2, 3, 4}
	run(t, n, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		src := shmem.MustAlloc[int64](ctx, 2)
		dst := shmem.MustAlloc[int64](ctx, 2)
		scratch := shmem.MustAlloc[int64](ctx, 2*n)
		s := src.Local(ctx)
		s[0], s[1] = int64(rk.ID), 1
		if err := shmem.ReduceSum(ctx, team, src, dst, scratch, 2); err != nil {
			return err
		}
		got := dst.Local(ctx)
		if got[0] != 10 || got[1] != n {
			t.Errorf("PE %d reduce = %v", rk.ID, got)
		}
		return nil
	})
}

func TestCollectValidation(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		src := shmem.MustAlloc[int64](ctx, 2)
		dst := shmem.MustAlloc[int64](ctx, 2)
		if rk.ID == 0 {
			if err := shmem.Collect(ctx, []int{0, 1}, src, dst, 2); err == nil {
				t.Error("undersized collect destination accepted")
			}
			if err := shmem.Broadcast(ctx, []int{1}, 1, src, dst, 1); err == nil {
				t.Error("broadcast without caller in team accepted")
			}
			if err := shmem.Broadcast(ctx, []int{0}, 1, src, dst, 1); err == nil {
				t.Error("broadcast with root outside team accepted")
			}
		}
		ctx.BarrierAll()
		return nil
	})
}

func shmemContains(team []int, pe int) bool {
	for _, p := range team {
		if p == pe {
			return true
		}
	}
	return false
}
