// Package shmem is a from-scratch, OpenSHMEM-flavoured one-sided library
// over the simulated machine: a symmetric heap, typed put/get, memory
// ordering (fence/quiet), barriers and point-to-point wait_until. It is the
// backend the directive layer's TARGET_COMM_SHMEM translates to.
//
// Symmetry is enforced the way real SHMEM enforces it: allocation is
// collective, every PE must allocate in the same order with the same size
// and element type, and violations are reported as errors. Data movement is
// real (bytes land in the target PE's slice); performance is charged to the
// virtual clock with the one-sided cost parameters of the machine profile,
// which are substantially cheaper per small message than the two-sided MPI
// path — the property the paper's Figure 4 exploits.
package shmem

import (
	"fmt"
	"sync"
	"time"

	"commintent/internal/model"
	"commintent/internal/simnet"
	"commintent/internal/spmd"
	"commintent/internal/telemetry"
)

// Elem constrains the element types the symmetric heap supports.
type Elem interface {
	~int32 | ~int64 | ~float32 | ~float64 | ~uint8 | ~uint64
}

// Cmp is a wait_until comparison operator.
type Cmp int

const (
	CmpEQ Cmp = iota
	CmpNE
	CmpGT
	CmpGE
	CmpLT
	CmpLE
)

func (c Cmp) String() string {
	switch c {
	case CmpEQ:
		return "=="
	case CmpNE:
		return "!="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	default:
		return fmt.Sprintf("cmp(%d)", int(c))
	}
}

func satisfies[T Elem](v T, c Cmp, w T) bool {
	switch c {
	case CmpEQ:
		return v == w
	case CmpNE:
		return v != w
	case CmpGT:
		return v > w
	case CmpGE:
		return v >= w
	case CmpLT:
		return v < w
	case CmpLE:
		return v <= w
	default:
		return false
	}
}

// worldState is the per-world shared symmetric table plus per-PE RMA
// signal boards.
type worldState struct {
	mu      sync.Mutex
	entries []*entry
	rma     []*rmaBoard
}

type entry struct {
	mu        sync.Mutex
	per       []any // per PE: []T
	resolved  any   // [][]T table shared by every PE's Slice, built at Alloc
	elemBytes int
	n         int
	typeName  string
}

// rmaBoard tracks one-sided traffic arriving at a PE, for wait_until.
// Arrival signalling is a generation channel rather than a sync.Cond: each
// wake closes the current channel and installs a fresh one, so waiters can
// select against a timer — which is what makes WaitUntilTimeout possible
// (a Cond.Wait cannot be interrupted).
type rmaBoard struct {
	mu          sync.Mutex
	gen         chan struct{} // closed and replaced under mu when waiters > 0
	waiters     int           // parked waitUntil calls; guards the channel churn
	lastArrival model.Time
	version     uint64
}

// wake signals all current waiters. Caller holds b.mu. With no one parked
// this is a single integer check, so the put fast path never pays the
// close-and-reallocate cost.
func (b *rmaBoard) wake() {
	if b.waiters == 0 {
		return
	}
	close(b.gen)
	b.gen = make(chan struct{})
}

func state(w *spmd.World) *worldState {
	ws := w.Shared("shmem/worldState", func() any {
		s := &worldState{rma: make([]*rmaBoard, w.Size())}
		for i := range s.rma {
			s.rma[i] = &rmaBoard{gen: make(chan struct{})}
		}
		return s
	}).(*worldState)
	return ws
}

// DefaultWatchdog is the real-time backstop armed by WaitUntilTimeout when
// the context has no explicit watchdog configured.
const DefaultWatchdog = 10 * time.Second

// Ctx is one PE's handle on the SHMEM world.
type Ctx struct {
	rk     *spmd.Rank
	ws     *worldState
	nextID int

	outstanding model.Time // max arrival time of this PE's unquieted puts

	wdog time.Duration // real-time watchdog for WaitUntilTimeout; 0 = default

	tele ctxTele // metric handles; all nil (no-op) when telemetry is off
}

// SetWatchdog overrides the real-time watchdog armed by WaitUntilTimeout
// (DefaultWatchdog when zero).
func (c *Ctx) SetWatchdog(d time.Duration) { c.wdog = d }

func (c *Ctx) watchdog() time.Duration {
	if c.wdog > 0 {
		return c.wdog
	}
	return DefaultWatchdog
}

// ctxTele caches this PE's telemetry handles.
type ctxTele struct {
	tr          *telemetry.Tracer
	fences      *telemetry.Counter
	quiets      *telemetry.Counter
	quietElided *telemetry.Counter // quiets whose epoch had no outstanding puts
	barriers    *telemetry.Counter
	idle        *telemetry.Counter // blocked virtual ns in quiet/barrier/wait_until
	putBytes    *telemetry.Counter // one-sided bytes put to remote PEs
	getBytes    *telemetry.Counter // one-sided bytes fetched from remote PEs
	amos        *telemetry.Counter // atomic memory operations
}

// New initialises SHMEM for this rank (the analogue of shmem_init).
func New(rk *spmd.Rank) *Ctx {
	c := &Ctx{rk: rk, ws: state(rk.World())}
	if t := rk.World().Telemetry(); t != nil {
		reg := t.Registry()
		r := telemetry.Rank(rk.ID)
		c.tele = ctxTele{
			tr:          t.Tracer(),
			fences:      reg.Counter("shmem_fence_total", r),
			quiets:      reg.Counter("shmem_quiet_total", r),
			quietElided: reg.Counter("shmem_quiet_elided_total", r),
			barriers:    reg.Counter("shmem_barrier_total", r),
			idle:        reg.Counter("shmem_idle_virtual_ns_total", r),
			putBytes:    reg.Counter("shmem_put_bytes_total", r),
			getBytes:    reg.Counter("shmem_get_bytes_total", r),
			amos:        reg.Counter("shmem_amo_total", r),
		}
	}
	return c
}

// MyPE reports this PE's id.
func (c *Ctx) MyPE() int { return c.rk.ID }

// NPEs reports the number of PEs.
func (c *Ctx) NPEs() int { return c.rk.N }

// SPMD returns the underlying rank context.
func (c *Ctx) SPMD() *spmd.Rank { return c.rk }

func (c *Ctx) prof() *model.Profile { return c.rk.Profile() }
func (c *Ctx) clock() *model.Clock  { return c.rk.Clock() }

// emit publishes a fabric event stamped with the PE's current directive
// region, mirroring the mpi substrate's attribution. One atomic load when
// unobserved.
func (c *Ctx) emit(e simnet.Event) {
	f := c.rk.World().Fabric()
	if !f.Observed() {
		return
	}
	e.Region = c.rk.Endpoint().RegionID()
	f.Emit(e)
}

// span opens a region-attributed tracer span (no-op handle when telemetry
// is disabled).
func (c *Ctx) span(name string, start model.Time) telemetry.SpanHandle {
	if c.tele.tr == nil {
		return telemetry.SpanHandle{}
	}
	return c.tele.tr.BeginRegion(c.rk.ID, name, "shmem", start, c.rk.Endpoint().RegionID())
}

// notePut records an outbound put for Quiet accounting.
func (c *Ctx) notePut(arrive model.Time) {
	if arrive > c.outstanding {
		c.outstanding = arrive
	}
}

// Quiet blocks (in virtual time) until all of this PE's outstanding puts
// are remotely complete. A quiet issued with no outstanding puts — the
// epoch is already quiesced — is elided: the network has nothing to drain,
// so the call costs nothing and only the elision counter moves. Elision is
// a purely PE-local decision (outstanding is PE-local state), so virtual
// time stays deterministic.
func (c *Ctx) Quiet() {
	if c.outstanding == 0 {
		c.tele.quiets.Inc()
		c.tele.quietElided.Inc()
		return
	}
	clk := c.clock()
	sp := c.span("shmem_quiet", clk.Now())
	clk.Advance(c.prof().ShmemQuiet)
	idle := c.outstanding - clk.Now()
	if idle < 0 {
		idle = 0
	}
	clk.AdvanceTo(c.outstanding)
	c.outstanding = 0
	c.tele.quiets.Inc()
	c.tele.idle.AddTime(idle)
	sp.End(clk.Now())
	c.emit(simnet.Event{Rank: c.rk.ID, Kind: simnet.EvSync, Peer: -1, V: clk.Now(), Idle: idle})
}

// Fence orders this PE's puts per destination without waiting for remote
// completion. With this simulator's in-order delivery it is purely a cost.
func (c *Ctx) Fence() {
	c.clock().Advance(c.prof().ShmemFence)
	c.tele.fences.Inc()
}

// BarrierAll synchronises all PEs and implies a Quiet.
func (c *Ctx) BarrierAll() {
	clk := c.clock()
	sp := c.span("shmem_barrier_all", clk.Now())
	enter := model.Max(clk.Now(), c.outstanding)
	maxV := c.rk.World().Fabric().WorldBarrier().Wait(c.MyPE(), enter)
	idle := maxV - clk.Now()
	if idle < 0 {
		idle = 0
	}
	clk.AdvanceTo(maxV)
	clk.Advance(c.prof().ShmemBarrierTime(c.NPEs()))
	c.outstanding = 0
	c.tele.barriers.Inc()
	c.tele.idle.AddTime(idle)
	sp.End(clk.Now())
	c.emit(simnet.Event{Rank: c.rk.ID, Kind: simnet.EvBarrier, Peer: -1, V: clk.Now(), Idle: idle})
}

// teamBarriers caches simnet barriers for PE subsets.
type teamBarriers struct {
	mu sync.Mutex
	m  map[string]*simnet.Barrier
}

// TeamBarrier synchronises the listed PEs (which must include the caller)
// and implies a Quiet for the caller. It is the analogue of the strided
// shmem_barrier, generalised to an explicit PE list; all listed PEs must
// call it with the same list.
func (c *Ctx) TeamBarrier(pes []int) error {
	found := false
	for _, p := range pes {
		if p == c.MyPE() {
			found = true
		}
		if p < 0 || p >= c.NPEs() {
			return fmt.Errorf("shmem: TeamBarrier: PE %d out of range", p)
		}
	}
	if !found {
		return fmt.Errorf("shmem: TeamBarrier: caller PE %d not in team", c.MyPE())
	}
	tb := c.rk.World().Shared("shmem/teamBarriers", func() any {
		return &teamBarriers{m: make(map[string]*simnet.Barrier)}
	}).(*teamBarriers)
	key := fmt.Sprint(pes)
	tb.mu.Lock()
	b, ok := tb.m[key]
	if !ok {
		b = simnet.NewBarrier(len(pes))
		tb.m[key] = b
	}
	tb.mu.Unlock()
	me := 0
	for i, p := range pes {
		if p == c.MyPE() {
			me = i
			break
		}
	}
	clk := c.clock()
	enter := model.Max(clk.Now(), c.outstanding)
	maxV := b.Wait(me, enter)
	if idle := maxV - clk.Now(); idle > 0 {
		c.tele.idle.AddTime(idle)
	}
	clk.AdvanceTo(maxV)
	clk.Advance(c.prof().ShmemBarrierTime(len(pes)))
	c.outstanding = 0
	c.tele.barriers.Inc()
	return nil
}
