package shmem

import (
	"fmt"
)

// AnySlice is the type-erased view of a symmetric array, used by the
// directive layer, which must handle buffers of any element type. The
// paper's rule that SHMEM-targeted directive buffers "must also be
// symmetric data objects" is enforced by requiring this interface.
type AnySlice interface {
	// SymID identifies the symmetric allocation.
	SymID() int
	// Len reports the element count.
	Len() int
	// ElemBytes reports the element wire size, which selects the typed
	// put variant.
	ElemBytes() int
	// TypeName names the element type, for diagnostics.
	TypeName() string
	// LocalAny returns the calling PE's copy as a typed slice (e.g.
	// []float64).
	LocalAny(c *Ctx) any
	// PutAny copies count elements of src (a matching typed slice) into
	// PE pe's copy at dstOff.
	PutAny(c *Ctx, pe int, src any, srcOff, dstOff, count int) error
	// GetAny copies count elements from PE pe's copy at srcOff into dst.
	GetAny(c *Ctx, pe int, dst any, dstOff, srcOff, count int) error
}

// ElemBytes reports the element wire size.
func (s *Slice[T]) ElemBytes() int { return s.esz }

// TypeName names the element type. The name is computed once at Alloc —
// calling it never boxes a zero value through an interface.
func (s *Slice[T]) TypeName() string { return s.tname }

// LocalAny implements AnySlice. For the allocating PE — the only caller in
// SPMD practice — it returns the slice boxed once at Alloc, so the hot
// directive-lowering path never allocates here.
func (s *Slice[T]) LocalAny(c *Ctx) any {
	if c.MyPE() == s.home {
		return s.boxed
	}
	return s.on(c.MyPE())
}

// PutAny implements AnySlice.
func (s *Slice[T]) PutAny(c *Ctx, pe int, src any, srcOff, dstOff, count int) error {
	ts, ok := src.([]T)
	if !ok {
		return fmt.Errorf("shmem: PutAny: source %T does not match symmetric %s array", src, s.TypeName())
	}
	if srcOff < 0 || srcOff+count > len(ts) {
		return fmt.Errorf("shmem: PutAny: source range [%d,%d) out of %d", srcOff, srcOff+count, len(ts))
	}
	return s.Put(c, pe, ts[srcOff:srcOff+count], dstOff)
}

// GetAny implements AnySlice.
func (s *Slice[T]) GetAny(c *Ctx, pe int, dst any, dstOff, srcOff, count int) error {
	td, ok := dst.([]T)
	if !ok {
		return fmt.Errorf("shmem: GetAny: destination %T does not match symmetric %s array", dst, s.TypeName())
	}
	if dstOff < 0 || dstOff+count > len(td) {
		return fmt.Errorf("shmem: GetAny: destination range [%d,%d) out of %d", dstOff, dstOff+count, len(td))
	}
	return s.Get(c, pe, td[dstOff:dstOff+count], srcOff)
}

var _ AnySlice = (*Slice[float64])(nil)
