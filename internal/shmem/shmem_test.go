package shmem_test

import (
	"testing"

	"commintent/internal/model"
	"commintent/internal/shmem"
	"commintent/internal/spmd"
)

func run(t *testing.T, n int, body func(*spmd.Rank) error) {
	t.Helper()
	if err := spmd.Run(n, model.Uniform(100), body); err != nil {
		t.Fatal(err)
	}
}

func TestPutBarrierVisibility(t *testing.T) {
	const n = 4
	run(t, n, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		arr := shmem.MustAlloc[float64](ctx, n)
		// Ring put: each PE writes its id into slot [me] of the next PE.
		next := (rk.ID + 1) % n
		if err := arr.Put(ctx, next, []float64{float64(rk.ID)}, rk.ID); err != nil {
			return err
		}
		ctx.BarrierAll()
		local := arr.Local(ctx)
		prev := (rk.ID - 1 + n) % n
		if local[prev] != float64(prev) {
			t.Errorf("PE %d: slot %d = %v", rk.ID, prev, local[prev])
		}
		return nil
	})
}

func TestWaitUntilFlag(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		data := shmem.MustAlloc[float64](ctx, 8)
		flag := shmem.MustAlloc[int64](ctx, 1)
		if rk.ID == 0 {
			payload := []float64{1, 2, 3, 4, 5, 6, 7, 8}
			if err := data.Put(ctx, 1, payload, 0); err != nil {
				return err
			}
			ctx.Quiet()
			return flag.P(ctx, 1, 0, 1)
		}
		if err := flag.WaitUntil(ctx, 0, shmem.CmpGE, 1); err != nil {
			return err
		}
		local := data.Local(ctx)
		for i, v := range local {
			if v != float64(i+1) {
				t.Errorf("data[%d] = %v", i, v)
			}
		}
		return nil
	})
}

func TestGetRoundTrip(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		arr := shmem.MustAlloc[int64](ctx, 4)
		local := arr.Local(ctx)
		for i := range local {
			local[i] = int64(rk.ID*100 + i)
		}
		ctx.BarrierAll()
		other := 1 - rk.ID
		got := make([]int64, 4)
		if err := arr.Get(ctx, other, got, 0); err != nil {
			return err
		}
		for i := range got {
			if got[i] != int64(other*100+i) {
				t.Errorf("got[%d] = %d", i, got[i])
			}
		}
		ctx.BarrierAll()
		return nil
	})
}

func TestQuietAdvancesToArrival(t *testing.T) {
	if err := spmd.Run(2, model.GeminiLike(), func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		arr := shmem.MustAlloc[float64](ctx, 1024)
		if rk.ID == 0 {
			big := make([]float64, 1024)
			before := rk.Now()
			if err := arr.Put(ctx, 1, big, 0); err != nil {
				return err
			}
			afterPut := rk.Now()
			ctx.Quiet()
			afterQuiet := rk.Now()
			p := rk.Profile()
			wire := p.ShmemWireTime(1024 * 8)
			if afterPut-before >= wire {
				t.Errorf("put charged wire time locally: %v", afterPut-before)
			}
			if afterQuiet-before < wire {
				t.Errorf("quiet did not wait for remote completion: %v < %v", afterQuiet-before, wire)
			}
		}
		ctx.BarrierAll()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAsymmetricAllocationRejected(t *testing.T) {
	err := spmd.Run(2, model.Uniform(1), func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		size := 4
		if rk.ID == 1 {
			size = 8
		}
		_, err := shmem.Alloc[float64](ctx, size)
		return err
	})
	if err == nil {
		t.Fatal("asymmetric allocation not rejected")
	}
}

func TestAsymmetricTypeRejected(t *testing.T) {
	err := spmd.Run(2, model.Uniform(1), func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		if rk.ID == 0 {
			_, err := shmem.Alloc[float64](ctx, 4)
			return err
		}
		_, err := shmem.Alloc[int64](ctx, 4)
		return err
	})
	if err == nil {
		t.Fatal("asymmetric element type not rejected")
	}
}

func TestPutBoundsChecked(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		arr := shmem.MustAlloc[float64](ctx, 2)
		if rk.ID == 0 {
			if err := arr.Put(ctx, 1, []float64{1, 2, 3}, 0); err == nil {
				t.Error("overflowing put accepted")
			}
			if err := arr.Put(ctx, 5, []float64{1}, 0); err == nil {
				t.Error("out-of-range PE accepted")
			}
		}
		ctx.BarrierAll()
		return nil
	})
}

func TestTeamBarrier(t *testing.T) {
	const n = 6
	run(t, n, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		arr := shmem.MustAlloc[int64](ctx, 1)
		team := []int{0, 2, 4}
		if rk.ID%2 == 0 {
			// Even team: 0 puts to 2 and 4, then team barrier, they read.
			if rk.ID == 0 {
				if err := arr.P(ctx, 2, 0, 7); err != nil {
					return err
				}
				if err := arr.P(ctx, 4, 0, 7); err != nil {
					return err
				}
			}
			if err := ctx.TeamBarrier(team); err != nil {
				return err
			}
			if rk.ID != 0 && arr.Local(ctx)[0] != 7 {
				t.Errorf("PE %d: value %d after team barrier", rk.ID, arr.Local(ctx)[0])
			}
		}
		ctx.BarrierAll()
		return nil
	})
}

func TestTeamBarrierValidation(t *testing.T) {
	run(t, 2, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		if rk.ID == 0 {
			if err := ctx.TeamBarrier([]int{1}); err == nil {
				t.Error("team barrier without caller accepted")
			}
			if err := ctx.TeamBarrier([]int{0, 99}); err == nil {
				t.Error("team barrier with bogus PE accepted")
			}
		}
		return nil
	})
}

func TestBarrierAllImpliesQuiet(t *testing.T) {
	if err := spmd.Run(2, model.GeminiLike(), func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		arr := shmem.MustAlloc[float64](ctx, 4096)
		if rk.ID == 0 {
			big := make([]float64, 4096)
			if err := arr.Put(ctx, 1, big, 0); err != nil {
				return err
			}
		}
		before := rk.Now()
		ctx.BarrierAll()
		after := rk.Now()
		wire := rk.Profile().ShmemWireTime(4096 * 8)
		// Both ranks leave the barrier no earlier than the put's arrival.
		if after < before || after < wire {
			t.Errorf("barrier exit %v precedes put arrival %v", after, wire)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCmpOperators(t *testing.T) {
	cases := []struct {
		c    shmem.Cmp
		v, w int64
		want bool
	}{
		{shmem.CmpEQ, 3, 3, true}, {shmem.CmpEQ, 3, 4, false},
		{shmem.CmpNE, 3, 4, true}, {shmem.CmpNE, 3, 3, false},
		{shmem.CmpGT, 4, 3, true}, {shmem.CmpGT, 3, 3, false},
		{shmem.CmpGE, 3, 3, true}, {shmem.CmpGE, 2, 3, false},
		{shmem.CmpLT, 2, 3, true}, {shmem.CmpLT, 3, 3, false},
		{shmem.CmpLE, 3, 3, true}, {shmem.CmpLE, 4, 3, false},
	}
	run(t, 2, func(rk *spmd.Rank) error {
		ctx := shmem.New(rk)
		flag := shmem.MustAlloc[int64](ctx, len(cases))
		if rk.ID == 0 {
			for i, tc := range cases {
				if err := flag.P(ctx, 1, i, tc.v); err != nil {
					return err
				}
			}
			ctx.BarrierAll()
			return nil
		}
		ctx.BarrierAll()
		for i, tc := range cases {
			if tc.want {
				if err := flag.WaitUntil(ctx, i, tc.c, tc.w); err != nil {
					return err
				}
			}
		}
		return nil
	})
}
