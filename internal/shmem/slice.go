package shmem

import (
	"fmt"
	"reflect"
	"time"

	"commintent/internal/model"
	"commintent/internal/simnet"
)

// Slice is a symmetric array: the same allocation exists on every PE, and
// remote PEs' copies are addressable by (PE, element offset). It is the
// analogue of memory returned by shmalloc.
//
// All PEs' copies are resolved into a typed table once, at Alloc time (the
// allocation is collective and the table is immutable afterwards), so the
// steady-state put/get path addresses remote memory with one slice index —
// no lock, no type assertion, no interface unboxing.
type Slice[T Elem] struct {
	id    int
	ws    *worldState
	n     int
	esz   int
	tname string // element type name, precomputed (diagnostics)
	bufs  [][]T  // every PE's copy, shared table resolved at Alloc
	home  int    // the allocating PE
	boxed any    // bufs[home] pre-boxed, so LocalAny never allocates
}

func elemBytes[T Elem]() int {
	var z T
	return int(reflect.TypeOf(z).Size())
}

// Alloc symmetrically allocates an n-element array of T. It is collective:
// every PE must call Alloc in the same order with the same n and T, and the
// call synchronises all PEs (as shmalloc does). Asymmetric allocation is
// reported as an error.
func Alloc[T Elem](c *Ctx, n int) (*Slice[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("shmem: Alloc size %d", n)
	}
	id := c.nextID
	c.nextID++
	esz := elemBytes[T]()
	var z T
	tn := reflect.TypeOf(z).String()

	c.ws.mu.Lock()
	for len(c.ws.entries) <= id {
		c.ws.entries = append(c.ws.entries, &entry{per: make([]any, c.NPEs())})
	}
	e := c.ws.entries[id]
	c.ws.mu.Unlock()

	var mismatch error
	e.mu.Lock()
	if e.typeName == "" {
		e.typeName, e.n, e.elemBytes = tn, n, esz
	} else if e.typeName != tn || e.n != n {
		mismatch = fmt.Errorf("shmem: asymmetric allocation %d on PE %d: %s[%d] vs %s[%d]",
			id, c.MyPE(), tn, n, e.typeName, e.n)
	}
	if mismatch == nil {
		e.per[c.MyPE()] = make([]T, n)
	}
	e.mu.Unlock()

	// shmalloc is synchronising: all PEs leave together — even on error,
	// so a detected asymmetry cannot deadlock the symmetric PEs.
	c.BarrierAll()
	if mismatch != nil {
		return nil, mismatch
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	for pe, buf := range e.per {
		if buf == nil {
			return nil, fmt.Errorf("shmem: allocation %d missing on PE %d after barrier (asymmetric allocation)", id, pe)
		}
	}
	// Resolve the shared typed table once (first PE through builds it);
	// e.per is immutable after the allocation barrier, so the table can be
	// read lock-free for the life of the allocation.
	if e.resolved == nil {
		bufs := make([][]T, len(e.per))
		for pe, buf := range e.per {
			bufs[pe] = buf.([]T)
		}
		e.resolved = bufs
	}
	bufs := e.resolved.([][]T)
	me := c.MyPE()
	return &Slice[T]{
		id: id, ws: c.ws, n: n, esz: esz, tname: tn,
		bufs: bufs, home: me, boxed: bufs[me],
	}, nil
}

// MustAlloc is Alloc that panics on error; convenient in SPMD bodies where
// symmetry is structurally guaranteed.
func MustAlloc[T Elem](c *Ctx, n int) *Slice[T] {
	s, err := Alloc[T](c, n)
	if err != nil {
		panic(err)
	}
	return s
}

// Len reports the symmetric array's element count.
func (s *Slice[T]) Len() int { return s.n }

// SymID reports the symmetric allocation id (used by the directive layer
// to recognise symmetric buffers).
func (s *Slice[T]) SymID() int { return s.id }

// on returns PE pe's copy: a lock-free load from the table resolved at
// Alloc (synchronisation of the *contents* is still the caller's job, via
// the per-destination RMA boards).
func (s *Slice[T]) on(pe int) []T { return s.bufs[pe] }

// Local returns the calling PE's copy of the array. Reads of remotely
// written elements are only well-defined after a synchronisation
// (WaitUntil, TeamBarrier, BarrierAll).
func (s *Slice[T]) Local(c *Ctx) []T { return s.on(c.MyPE()) }

// Put copies src into PE pe's copy of the array starting at element dstOff
// (the analogue of the typed shmem_put routines; the element size selects
// the variant, which the cost model treats uniformly). Remote completion
// requires Quiet or a barrier; remote visibility to a waiting PE is
// signalled for WaitUntil.
func (s *Slice[T]) Put(c *Ctx, pe int, src []T, dstOff int) error {
	if pe < 0 || pe >= c.NPEs() {
		return fmt.Errorf("shmem: Put to PE %d of %d", pe, c.NPEs())
	}
	if dstOff < 0 || dstOff+len(src) > s.n {
		return fmt.Errorf("shmem: Put of %d elements at offset %d overflows symmetric array of %d", len(src), dstOff, s.n)
	}
	p := c.prof()
	clk := c.clock()
	bytes := len(src) * s.esz
	sp := c.span("shmem_put", clk.Now())
	clk.Advance(p.ShmemPutOverhead + p.ShmemInjectTime(bytes))
	defer sp.End(clk.Now())
	arrive := clk.Now() + p.ShmemLatencyBetween(c.MyPE(), pe)

	board := s.ws.rma[pe]
	board.mu.Lock()
	copy(s.on(pe)[dstOff:dstOff+len(src)], src)
	if arrive > board.lastArrival {
		board.lastArrival = arrive
	}
	board.version++
	board.wake()
	board.mu.Unlock()

	c.notePut(arrive)
	c.tele.putBytes.Add(int64(bytes))
	c.emit(simnet.Event{Rank: c.rk.ID, Kind: simnet.EvPut, Peer: pe, Bytes: bytes, V: clk.Now()})
	return nil
}

// P writes a single element to PE pe at offset off (shmem_p).
func (s *Slice[T]) P(c *Ctx, pe int, off int, v T) error {
	return s.Put(c, pe, []T{v}, off)
}

// Get copies count elements from PE pe's copy starting at srcOff into dst.
// It blocks for the round trip.
func (s *Slice[T]) Get(c *Ctx, pe int, dst []T, srcOff int) error {
	if pe < 0 || pe >= c.NPEs() {
		return fmt.Errorf("shmem: Get from PE %d of %d", pe, c.NPEs())
	}
	if srcOff < 0 || srcOff+len(dst) > s.n {
		return fmt.Errorf("shmem: Get of %d elements at offset %d overflows symmetric array of %d", len(dst), srcOff, s.n)
	}
	p := c.prof()
	clk := c.clock()
	bytes := len(dst) * s.esz
	sp := c.span("shmem_get", clk.Now())
	clk.Advance(p.ShmemGetOverhead)
	board := s.ws.rma[pe]
	board.mu.Lock()
	copy(dst, s.on(pe)[srcOff:srcOff+len(dst)])
	board.mu.Unlock()
	clk.Advance(p.ShmemWireTime(0) + p.ShmemWireTime(bytes))
	sp.End(clk.Now())
	c.tele.getBytes.Add(int64(bytes))
	c.emit(simnet.Event{Rank: c.rk.ID, Kind: simnet.EvGet, Peer: pe, Bytes: bytes, V: clk.Now()})
	return nil
}

// WaitUntil blocks until the local element at off satisfies (cmp, v); the
// element is expected to be written by a remote Put (shmem_wait_until). The
// caller's clock advances to the arrival time of the satisfying traffic.
func (s *Slice[T]) WaitUntil(c *Ctx, off int, cmp Cmp, v T) error {
	return s.waitUntil(c, off, cmp, v, nil, 0)
}

// WaitUntilTimeout is WaitUntil with a deadline of timeout virtual ns from
// the call. The trigger is the context's real-time watchdog (the virtual
// clock cannot advance while blocked); on expiry the wait fails with
// simnet.ErrDeadline — match with errors.Is — charged at the virtual
// deadline. This is the one-sided analogue of mpi.RecvTimeout: a peer that
// died before signalling turns into a typed error instead of a hang.
func (s *Slice[T]) WaitUntilTimeout(c *Ctx, off int, cmp Cmp, v T, timeout model.Time) error {
	t := time.NewTimer(c.watchdog())
	defer t.Stop()
	return s.waitUntil(c, off, cmp, v, t.C, c.clock().Now()+timeout)
}

func (s *Slice[T]) waitUntil(c *Ctx, off int, cmp Cmp, v T, expire <-chan time.Time, deadline model.Time) error {
	if off < 0 || off >= s.n {
		return fmt.Errorf("shmem: WaitUntil offset %d of %d", off, s.n)
	}
	local := s.Local(c)
	clk := c.clock()
	sp := c.span("shmem_wait_until", clk.Now())
	board := s.ws.rma[c.MyPE()]
	board.mu.Lock()
	for !satisfies(local[off], cmp, v) {
		// Grab the current generation under the lock, then park outside it;
		// wake() closes the channel under the same lock, so a signal between
		// unlock and select cannot be missed. The waiter count keeps wake()
		// free for arrivals nobody is waiting on.
		ch := board.gen
		board.waiters++
		board.mu.Unlock()
		select {
		case <-ch:
		case <-expire:
			board.mu.Lock()
			board.waiters--
			board.mu.Unlock()
			clk.Advance(c.prof().ShmemWaitPoll)
			if idle := deadline - clk.Now(); idle > 0 {
				c.tele.idle.AddTime(idle)
			}
			clk.AdvanceTo(deadline)
			sp.End(clk.Now())
			return fmt.Errorf("shmem: wait_until PE %d offset %d: %w", c.MyPE(), off, simnet.ErrDeadline)
		}
		board.mu.Lock()
		board.waiters--
	}
	arrival := board.lastArrival
	board.mu.Unlock()
	clk.Advance(c.prof().ShmemWaitPoll)
	if idle := arrival - clk.Now(); idle > 0 {
		c.tele.idle.AddTime(idle)
	}
	clk.AdvanceTo(arrival)
	sp.End(clk.Now())
	return nil
}
