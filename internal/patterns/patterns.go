// Package patterns holds the named directive-expressed communication
// patterns shared by the demo commands (commtrace, commstat): the paper's
// ring and even-odd listings plus a bidirectional halo exchange. Each
// pattern is one rank's SPMD body expressed purely with comm_parameters /
// comm_p2p directives.
package patterns

import (
	"fmt"

	"commintent/internal/core"
	"commintent/internal/shmem"
	"commintent/internal/spmd"
)

// Names lists the patterns Run accepts.
func Names() []string { return []string{"ring", "evenodd", "halo"} }

// Run expresses the chosen pattern with directives on one rank. iters
// repeats the pattern body (each iteration is its own region), so metrics
// and traces can exercise steady-state behaviour; iters < 1 runs once.
func Run(pattern string, rk *spmd.Rank, env *core.Env, shm *shmem.Ctx, tgt core.Target, count, iters int) error {
	if iters < 1 {
		iters = 1
	}
	n := rk.N
	me := rk.ID
	switch pattern {
	case "ring":
		// Listing 1: prev sends to me, I send to next.
		sbuf := shmem.MustAlloc[float64](shm, count)
		rbuf := shmem.MustAlloc[float64](shm, count)
		local := sbuf.Local(shm)
		for i := range local {
			local[i] = float64(me*100 + i)
		}
		prev := (me - 1 + n) % n
		next := (me + 1) % n
		for it := 0; it < iters; it++ {
			if err := env.P2P(
				core.Sender(prev), core.Receiver(next),
				core.SBuf(sbuf), core.RBuf(rbuf),
				core.WithTarget(tgt),
			); err != nil {
				return err
			}
		}
		return nil
	case "evenodd":
		// Listing 2: even ranks send to the nearest odd rank.
		sbuf := shmem.MustAlloc[float64](shm, count)
		rbuf := shmem.MustAlloc[float64](shm, count)
		for it := 0; it < iters; it++ {
			if err := env.P2P(
				core.Sender(me-1), core.Receiver(me+1),
				core.SendWhen(me%2 == 0 && me+1 < n), core.ReceiveWhen(me%2 == 1),
				core.SBuf(sbuf), core.RBuf(rbuf),
				core.WithTarget(tgt),
			); err != nil {
				return err
			}
		}
		return nil
	case "halo":
		// Bidirectional nearest-neighbour halo exchange in one region.
		field := shmem.MustAlloc[float64](shm, count+2)
		haloL := shmem.MustAlloc[float64](shm, 1)
		haloR := shmem.MustAlloc[float64](shm, 1)
		f := field.Local(shm)
		for i := range f {
			f[i] = float64(me)
		}
		for it := 0; it < iters; it++ {
			err := env.Parameters(func(r *core.Region) error {
				// Send my left edge to the left neighbour's right halo.
				if err := r.P2P(
					core.Sender(me+1), core.Receiver(me-1),
					core.SendWhen(me > 0), core.ReceiveWhen(me < n-1),
					core.SBuf(core.At(field, 1)), core.RBuf(haloR), core.Count(1),
				); err != nil {
					return err
				}
				// Send my right edge to the right neighbour's left halo.
				return r.P2P(
					core.Sender(me-1), core.Receiver(me+1),
					core.SendWhen(me < n-1), core.ReceiveWhen(me > 0),
					core.SBuf(core.At(field, count)), core.RBuf(haloL), core.Count(1),
				)
			},
				core.WithTarget(tgt),
				core.PlaceSync(core.EndParamRegion),
			)
			if err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown pattern %q (have %v)", pattern, Names())
	}
}

// ParseTarget maps the command-line target names to core targets.
func ParseTarget(s string) (core.Target, error) {
	switch s {
	case "mpi2side":
		return core.TargetMPI2Side, nil
	case "mpi1side":
		return core.TargetMPI1Side, nil
	case "shmem":
		return core.TargetSHMEM, nil
	case "auto":
		return core.TargetAuto, nil
	default:
		return 0, fmt.Errorf("unknown target %q", s)
	}
}
