package trace_test

import (
	"sync"
	"testing"

	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/simnet"
	"commintent/internal/spmd"
	"commintent/internal/trace"
)

func TestCollectorShardsPreserveArrivalOrder(t *testing.T) {
	const n = 4
	c := trace.NewCollector(n)
	// Interleave ranks; the sequence stamp must reconstruct exactly this
	// order on read, even though events land in different shards.
	var want []simnet.Event
	for i := 0; i < 100; i++ {
		e := simnet.Event{Rank: i % n, Kind: simnet.EvSend, Peer: (i + 1) % n, Bytes: i, V: model.Time(i)}
		c.Add(e)
		want = append(want, e)
	}
	got := c.Events()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCollectorConcurrentAdd(t *testing.T) {
	const n, each = 8, 500
	c := trace.NewCollector(n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Add(simnet.Event{Rank: r, Kind: simnet.EvSend, Peer: 0, Bytes: 8})
			}
		}(r)
	}
	wg.Wait()
	if c.Len() != n*each {
		t.Fatalf("len = %d, want %d", c.Len(), n*each)
	}
	// Per-rank sub-order must survive the merge, and the sequence stamps
	// must be strictly increasing overall.
	if got := len(c.Events()); got != n*each {
		t.Fatalf("events = %d", got)
	}
	st := c.Stats()
	if st.Messages != n*each {
		t.Fatalf("messages = %d", st.Messages)
	}
}

func TestCollectorOutOfRangeRankDoesNotPanic(t *testing.T) {
	c := trace.NewCollector(2)
	c.Add(simnet.Event{Rank: -1, Kind: simnet.EvSend, Peer: 0})
	c.Add(simnet.Event{Rank: 99, Kind: simnet.EvSend, Peer: 0})
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestStatsCountsGetsAndRecvBytes(t *testing.T) {
	c := trace.NewCollector(2)
	c.Add(simnet.Event{Rank: 0, Kind: simnet.EvSend, Peer: 1, Bytes: 100})
	c.Add(simnet.Event{Rank: 1, Kind: simnet.EvRecvComplete, Peer: 0, Bytes: 100})
	c.Add(simnet.Event{Rank: 0, Kind: simnet.EvPut, Peer: 1, Bytes: 30})
	c.Add(simnet.Event{Rank: 1, Kind: simnet.EvGet, Peer: 0, Bytes: 25})
	st := c.Stats()
	if st.Messages != 3 {
		t.Errorf("messages = %d, want 3 (send+put+get)", st.Messages)
	}
	if st.DataBytes != 155 {
		t.Errorf("data bytes = %d, want 155", st.DataBytes)
	}
	if st.RecvBytes != 100 {
		t.Errorf("recv bytes = %d, want 100", st.RecvBytes)
	}
}

func TestStatsGetsFromLiveRun(t *testing.T) {
	// An MPI one-sided Get in a real run lands in Messages and DataBytes,
	// and the delivered two-sided payload shows up in RecvBytes.
	const n = 2
	col := runTraced(t, n, func(rk *spmd.Rank) error {
		c := mpi.World(rk)
		if rk.ID == 0 {
			r, err := c.Isend([]float64{1, 2}, 2, mpi.Float64, 1, 0)
			if err != nil {
				return err
			}
			_, err = c.Wait(r)
			return err
		}
		buf := make([]float64, 2)
		_, err := c.Recv(buf, 2, mpi.Float64, 0, 0)
		return err
	})
	st := col.Stats()
	if st.RecvBytes != 16 {
		t.Errorf("recv bytes = %d, want 16", st.RecvBytes)
	}
}

func TestDetectPatternEdgeCases(t *testing.T) {
	mk := func(n int, edges [][2]int) [][]int64 {
		m := make([][]int64, n)
		for i := range m {
			m[i] = make([]int64, n)
		}
		for _, e := range edges {
			m[e[0]][e[1]] = 8
		}
		return m
	}
	cases := []struct {
		name string
		m    [][]int64
		want trace.Pattern
	}{
		// A single rank talking to itself is the degenerate ring.
		{"n1-self", mk(1, [][2]int{{0, 0}}), trace.PatternRing},
		{"n1-empty", mk(1, nil), trace.PatternNone},
		// n=2 bidirectional satisfies both ring and star; ring wins by
		// check order (documented tie-break).
		{"n2-bidirectional", mk(2, [][2]int{{0, 1}, {1, 0}}), trace.PatternRing},
		{"n2-oneway", mk(2, [][2]int{{0, 1}}), trace.PatternEvenOdd},
		// Non-zero n with an all-zero matrix is no pattern at all.
		{"empty-4", mk(4, nil), trace.PatternNone},
		{"empty-0", mk(0, nil), trace.PatternNone},
		// Asymmetric neighbour exchange: adjacent edges but 3->2 missing,
		// so the bidirectional-neighbour rule must NOT fire.
		{"asymmetric-neighbor", mk(4, [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}}), trace.PatternOther},
	}
	for _, tc := range cases {
		if got := trace.DetectPattern(tc.m); got != tc.want {
			t.Errorf("%s: %v, want %v", tc.name, got, tc.want)
		}
	}
}

// singleMutexCollector is the pre-sharding reference implementation, kept
// for the benchmark comparison.
type singleMutexCollector struct {
	mu     sync.Mutex
	events []simnet.Event
}

func (c *singleMutexCollector) Add(e simnet.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// benchEmit drives add from one goroutine per rank — the shape of a real
// SPMD run, where each rank goroutine emits its own events.
func benchEmit(b *testing.B, ranks int, add func(simnet.Event)) {
	b.Helper()
	var wg sync.WaitGroup
	per := b.N/ranks + 1
	b.ResetTimer()
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e := simnet.Event{Rank: r, Kind: simnet.EvSend, Peer: (r + 1) % ranks, Bytes: 8}
			for i := 0; i < per; i++ {
				add(e)
			}
		}(r)
	}
	wg.Wait()
}

// BenchmarkCollectorAdd compares contended event recording through the
// sharded collector against the single-mutex reference implementation.
func BenchmarkCollectorAdd(b *testing.B) {
	const ranks = 8
	b.Run("sharded", func(b *testing.B) {
		c := trace.NewCollector(ranks)
		benchEmit(b, ranks, c.Add)
	})
	b.Run("single-mutex", func(b *testing.B) {
		c := &singleMutexCollector{}
		benchEmit(b, ranks, c.Add)
	})
}
