// Package trace collects and analyses fabric events: per-rank operation
// logs, aggregate statistics, communication matrices and simple pattern
// detection. It is the observability layer behind cmd/commtrace and the
// analysis assertions in tests — the kind of static/dynamic communication
// analysis the paper argues directives enable.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"commintent/internal/simnet"
)

// Collector accumulates fabric events. The buffer is sharded per rank so
// concurrently emitting rank goroutines do not contend on one mutex; a
// global atomic sequence number stamped at emission lets Events reconstruct
// the exact arrival order on read.
type Collector struct {
	n      int
	seq    atomic.Uint64
	shards []collectorShard
}

type collectorShard struct {
	mu     sync.Mutex
	events []seqEvent
	// Pad each shard past a cache line: adjacent shards are written by
	// different rank goroutines, and false sharing would hand back the
	// contention the sharding removes.
	_ [96]byte
}

type seqEvent struct {
	seq uint64
	e   simnet.Event
}

// NewCollector creates an unattached collector over n ranks (events arrive
// via Add); most callers use Attach instead.
func NewCollector(n int) *Collector {
	if n < 1 {
		n = 1
	}
	return &Collector{n: n, shards: make([]collectorShard, n)}
}

// Attach subscribes a new collector to all events of the fabric.
func Attach(f *simnet.Fabric) *Collector {
	c := NewCollector(f.Size())
	f.Observe(c.Add)
	return c
}

// Add records one event in the emitting rank's shard.
func (c *Collector) Add(e simnet.Event) {
	idx := e.Rank
	if idx < 0 || idx >= len(c.shards) {
		idx = 0
	}
	seq := c.seq.Add(1)
	sh := &c.shards[idx]
	sh.mu.Lock()
	sh.events = append(sh.events, seqEvent{seq: seq, e: e})
	sh.mu.Unlock()
}

// snapshot copies all shards and merges them back into arrival order.
func (c *Collector) snapshot() []seqEvent {
	var all []seqEvent
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		all = append(all, sh.events...)
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	return all
}

// Events returns a copy of everything collected so far, in arrival order.
func (c *Collector) Events() []simnet.Event {
	all := c.snapshot()
	out := make([]simnet.Event, len(all))
	for i, se := range all {
		out[i] = se.e
	}
	return out
}

// Reset discards collected events.
func (c *Collector) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.events = sh.events[:0]
		sh.mu.Unlock()
	}
}

// Len reports the number of collected events.
func (c *Collector) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.events)
		sh.mu.Unlock()
	}
	return n
}

// Stats summarises collected events.
type Stats struct {
	Ranks     int
	PerKind   map[simnet.EventKind]int
	DataBytes int64 // payload bytes of sends, puts and gets
	RecvBytes int64 // payload bytes delivered into receive buffers
	Messages  int   // sends, puts and gets
	Syncs     int   // waits, waitalls, fences, quiets, barriers
}

// Stats computes aggregate statistics. Stats needs no ordering, so it
// iterates the shards directly without the merge Events performs.
func (c *Collector) Stats() Stats {
	s := Stats{Ranks: c.n, PerKind: make(map[simnet.EventKind]int)}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, se := range sh.events {
			e := se.e
			s.PerKind[e.Kind]++
			switch e.Kind {
			case simnet.EvSend, simnet.EvPut, simnet.EvGet:
				s.DataBytes += int64(e.Bytes)
				s.Messages++
			case simnet.EvRecvComplete:
				s.RecvBytes += int64(e.Bytes)
			case simnet.EvWait, simnet.EvSync, simnet.EvBarrier:
				s.Syncs++
			}
		}
		sh.mu.Unlock()
	}
	return s
}

// CommMatrix returns bytes moved from each source rank to each destination
// rank by sends and puts.
func (c *Collector) CommMatrix() [][]int64 {
	m := make([][]int64, c.n)
	for i := range m {
		m[i] = make([]int64, c.n)
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, se := range sh.events {
			e := se.e
			if (e.Kind == simnet.EvSend || e.Kind == simnet.EvPut) && e.Peer >= 0 && e.Peer < c.n && e.Rank >= 0 && e.Rank < c.n {
				m[e.Rank][e.Peer] += int64(e.Bytes)
			}
		}
		sh.mu.Unlock()
	}
	return m
}

// Pattern is a detected point-to-point communication structure.
type Pattern string

const (
	PatternNone     Pattern = "none"
	PatternRing     Pattern = "ring"
	PatternStar     Pattern = "star"     // one hub exchanging with everyone
	PatternNeighbor Pattern = "neighbor" // bidirectional nearest-neighbour
	PatternEvenOdd  Pattern = "even-odd" // even ranks to the next odd rank
	PatternOther    Pattern = "irregular"
)

// DetectPattern classifies a communication matrix against the recurring
// point-to-point patterns of scientific applications the paper cites
// (Vetter & Mueller; Kim & Lilja; Riesen).
func DetectPattern(m [][]int64) Pattern {
	n := len(m)
	if n == 0 {
		return PatternNone
	}
	type edge struct{ s, d int }
	var edges []edge
	for s := range m {
		for d := range m[s] {
			if m[s][d] > 0 {
				edges = append(edges, edge{s, d})
			}
		}
	}
	if len(edges) == 0 {
		return PatternNone
	}
	has := func(s, d int) bool { return s >= 0 && d >= 0 && s < n && d < n && m[s][d] > 0 }
	all := func(pred func(e edge) bool) bool {
		for _, e := range edges {
			if !pred(e) {
				return false
			}
		}
		return true
	}
	// Ring: every rank sends exactly to (rank+1) mod n, and all ranks do.
	if len(edges) == n && all(func(e edge) bool { return e.d == (e.s+1)%n }) {
		return PatternRing
	}
	// Even-odd: even ranks send to rank+1 only.
	if all(func(e edge) bool { return e.s%2 == 0 && e.d == e.s+1 }) {
		return PatternEvenOdd
	}
	// Star: some hub h participates in every edge.
	for h := 0; h < n; h++ {
		if all(func(e edge) bool { return e.s == h || e.d == h }) {
			return PatternStar
		}
	}
	// Neighbour: all edges connect adjacent ranks in both directions.
	if all(func(e edge) bool { return e.d == e.s+1 || e.d == e.s-1 }) {
		// Require symmetry for the bidirectional variant.
		sym := true
		for _, e := range edges {
			if !has(e.d, e.s) {
				sym = false
				break
			}
		}
		if sym {
			return PatternNeighbor
		}
	}
	return PatternOther
}

// FormatMatrix renders a communication matrix for terminal output.
func FormatMatrix(m [][]int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s", "")
	for d := range m {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("->%d", d))
	}
	b.WriteByte('\n')
	for s := range m {
		fmt.Fprintf(&b, "%6s", fmt.Sprintf("%d:", s))
		for d := range m[s] {
			fmt.Fprintf(&b, "%8d", m[s][d])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Timeline renders the first limit events of selected ranks, ordered by
// virtual time (then rank), as a readable trace.
func (c *Collector) Timeline(limit int, ranks ...int) string {
	evs := c.Events()
	want := map[int]bool{}
	for _, r := range ranks {
		want[r] = true
	}
	var sel []simnet.Event
	for _, e := range evs {
		if len(want) == 0 || want[e.Rank] {
			sel = append(sel, e)
		}
	}
	sort.SliceStable(sel, func(i, j int) bool {
		if sel[i].V != sel[j].V {
			return sel[i].V < sel[j].V
		}
		return sel[i].Rank < sel[j].Rank
	})
	if limit > 0 && len(sel) > limit {
		sel = sel[:limit]
	}
	var b strings.Builder
	for _, e := range sel {
		peer := "-"
		if e.Peer >= 0 {
			peer = fmt.Sprint(e.Peer)
		}
		fmt.Fprintf(&b, "%12v  rank %3d  %-14s peer=%-4s tag=%-4d bytes=%d\n",
			e.V, e.Rank, e.Kind, peer, e.Tag, e.Bytes)
	}
	return b.String()
}
