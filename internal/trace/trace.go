// Package trace collects and analyses fabric events: per-rank operation
// logs, aggregate statistics, communication matrices and simple pattern
// detection. It is the observability layer behind cmd/commtrace and the
// analysis assertions in tests — the kind of static/dynamic communication
// analysis the paper argues directives enable.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"commintent/internal/simnet"
)

// Collector accumulates fabric events.
type Collector struct {
	mu     sync.Mutex
	events []simnet.Event
	n      int
}

// Attach subscribes a new collector to all events of the fabric.
func Attach(f *simnet.Fabric) *Collector {
	c := &Collector{n: f.Size()}
	f.Observe(func(e simnet.Event) {
		c.mu.Lock()
		c.events = append(c.events, e)
		c.mu.Unlock()
	})
	return c
}

// Events returns a copy of everything collected so far.
func (c *Collector) Events() []simnet.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]simnet.Event, len(c.events))
	copy(out, c.events)
	return out
}

// Reset discards collected events.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = c.events[:0]
}

// Len reports the number of collected events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Stats summarises collected events.
type Stats struct {
	Ranks     int
	PerKind   map[simnet.EventKind]int
	DataBytes int64 // payload bytes of sends, puts and gets
	Messages  int   // sends + puts
	Syncs     int   // waits, waitalls, fences, quiets, barriers
}

// Stats computes aggregate statistics.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{Ranks: c.n, PerKind: make(map[simnet.EventKind]int)}
	for _, e := range c.events {
		s.PerKind[e.Kind]++
		switch e.Kind {
		case simnet.EvSend, simnet.EvPut:
			s.DataBytes += int64(e.Bytes)
			s.Messages++
		case simnet.EvGet:
			s.DataBytes += int64(e.Bytes)
		case simnet.EvWait, simnet.EvSync, simnet.EvBarrier:
			s.Syncs++
		}
	}
	return s
}

// CommMatrix returns bytes moved from each source rank to each destination
// rank by sends and puts.
func (c *Collector) CommMatrix() [][]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := make([][]int64, c.n)
	for i := range m {
		m[i] = make([]int64, c.n)
	}
	for _, e := range c.events {
		if (e.Kind == simnet.EvSend || e.Kind == simnet.EvPut) && e.Peer >= 0 && e.Peer < c.n && e.Rank >= 0 && e.Rank < c.n {
			m[e.Rank][e.Peer] += int64(e.Bytes)
		}
	}
	return m
}

// Pattern is a detected point-to-point communication structure.
type Pattern string

const (
	PatternNone     Pattern = "none"
	PatternRing     Pattern = "ring"
	PatternStar     Pattern = "star"     // one hub exchanging with everyone
	PatternNeighbor Pattern = "neighbor" // bidirectional nearest-neighbour
	PatternEvenOdd  Pattern = "even-odd" // even ranks to the next odd rank
	PatternOther    Pattern = "irregular"
)

// DetectPattern classifies a communication matrix against the recurring
// point-to-point patterns of scientific applications the paper cites
// (Vetter & Mueller; Kim & Lilja; Riesen).
func DetectPattern(m [][]int64) Pattern {
	n := len(m)
	if n == 0 {
		return PatternNone
	}
	type edge struct{ s, d int }
	var edges []edge
	for s := range m {
		for d := range m[s] {
			if m[s][d] > 0 {
				edges = append(edges, edge{s, d})
			}
		}
	}
	if len(edges) == 0 {
		return PatternNone
	}
	has := func(s, d int) bool { return s >= 0 && d >= 0 && s < n && d < n && m[s][d] > 0 }
	all := func(pred func(e edge) bool) bool {
		for _, e := range edges {
			if !pred(e) {
				return false
			}
		}
		return true
	}
	// Ring: every rank sends exactly to (rank+1) mod n, and all ranks do.
	if len(edges) == n && all(func(e edge) bool { return e.d == (e.s+1)%n }) {
		return PatternRing
	}
	// Even-odd: even ranks send to rank+1 only.
	if all(func(e edge) bool { return e.s%2 == 0 && e.d == e.s+1 }) {
		return PatternEvenOdd
	}
	// Star: some hub h participates in every edge.
	for h := 0; h < n; h++ {
		if all(func(e edge) bool { return e.s == h || e.d == h }) {
			return PatternStar
		}
	}
	// Neighbour: all edges connect adjacent ranks in both directions.
	if all(func(e edge) bool { return e.d == e.s+1 || e.d == e.s-1 }) {
		// Require symmetry for the bidirectional variant.
		sym := true
		for _, e := range edges {
			if !has(e.d, e.s) {
				sym = false
				break
			}
		}
		if sym {
			return PatternNeighbor
		}
	}
	return PatternOther
}

// FormatMatrix renders a communication matrix for terminal output.
func FormatMatrix(m [][]int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s", "")
	for d := range m {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("->%d", d))
	}
	b.WriteByte('\n')
	for s := range m {
		fmt.Fprintf(&b, "%6s", fmt.Sprintf("%d:", s))
		for d := range m[s] {
			fmt.Fprintf(&b, "%8d", m[s][d])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Timeline renders the first limit events of selected ranks, ordered by
// virtual time (then rank), as a readable trace.
func (c *Collector) Timeline(limit int, ranks ...int) string {
	evs := c.Events()
	want := map[int]bool{}
	for _, r := range ranks {
		want[r] = true
	}
	var sel []simnet.Event
	for _, e := range evs {
		if len(want) == 0 || want[e.Rank] {
			sel = append(sel, e)
		}
	}
	sort.SliceStable(sel, func(i, j int) bool {
		if sel[i].V != sel[j].V {
			return sel[i].V < sel[j].V
		}
		return sel[i].Rank < sel[j].Rank
	})
	if limit > 0 && len(sel) > limit {
		sel = sel[:limit]
	}
	var b strings.Builder
	for _, e := range sel {
		peer := "-"
		if e.Peer >= 0 {
			peer = fmt.Sprint(e.Peer)
		}
		fmt.Fprintf(&b, "%12v  rank %3d  %-14s peer=%-4s tag=%-4d bytes=%d\n",
			e.V, e.Rank, e.Kind, peer, e.Tag, e.Bytes)
	}
	return b.String()
}
