package trace_test

import (
	"strings"
	"testing"

	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/shmem"
	"commintent/internal/simnet"
	"commintent/internal/spmd"
	"commintent/internal/trace"
)

// runTraced executes an SPMD body over a fresh world with a collector
// attached.
func runTraced(t *testing.T, n int, body func(*spmd.Rank) error) *trace.Collector {
	t.Helper()
	w, err := spmd.NewWorld(n, model.Uniform(10))
	if err != nil {
		t.Fatal(err)
	}
	col := trace.Attach(w.Fabric())
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	return col
}

func TestStatsAndMatrix(t *testing.T) {
	const n = 4
	col := runTraced(t, n, func(rk *spmd.Rank) error {
		c := mpi.World(rk)
		next := (rk.ID + 1) % n
		prev := (rk.ID - 1 + n) % n
		in := make([]float64, 2)
		_, err := c.Sendrecv([]float64{1, 2}, 2, mpi.Float64, next, 0, in, 2, mpi.Float64, prev, 0)
		return err
	})
	st := col.Stats()
	if st.Messages != n {
		t.Errorf("messages = %d, want %d", st.Messages, n)
	}
	if st.DataBytes != int64(n*16) {
		t.Errorf("bytes = %d, want %d", st.DataBytes, n*16)
	}
	m := col.CommMatrix()
	for s := 0; s < n; s++ {
		if m[s][(s+1)%n] != 16 {
			t.Errorf("matrix[%d][%d] = %d", s, (s+1)%n, m[s][(s+1)%n])
		}
	}
	if got := trace.DetectPattern(m); got != trace.PatternRing {
		t.Errorf("pattern = %v, want ring", got)
	}
}

func TestDetectPatterns(t *testing.T) {
	mk := func(n int, edges [][2]int) [][]int64 {
		m := make([][]int64, n)
		for i := range m {
			m[i] = make([]int64, n)
		}
		for _, e := range edges {
			m[e[0]][e[1]] = 8
		}
		return m
	}
	cases := []struct {
		name string
		m    [][]int64
		want trace.Pattern
	}{
		{"empty", mk(4, nil), trace.PatternNone},
		{"ring", mk(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}), trace.PatternRing},
		{"even-odd", mk(6, [][2]int{{0, 1}, {2, 3}, {4, 5}}), trace.PatternEvenOdd},
		{"star", mk(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {3, 0}}), trace.PatternStar},
		{"neighbor", mk(4, [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}, {3, 2}}), trace.PatternNeighbor},
		{"irregular", mk(5, [][2]int{{0, 2}, {2, 4}, {1, 3}}), trace.PatternOther},
	}
	for _, tc := range cases {
		if got := trace.DetectPattern(tc.m); got != tc.want {
			t.Errorf("%s: %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestWLLSMSSetEvecIsStarPattern(t *testing.T) {
	// Within one LSMS group, the spin transfer is privileged->workers: a
	// star centred on the privileged rank.
	const n = 5
	col := runTraced(t, n, func(rk *spmd.Rank) error {
		c := mpi.World(rk)
		if rk.ID == 0 {
			reqs := make([]*mpi.Request, 0, n-1)
			for w := 1; w < n; w++ {
				r, err := c.Isend([]float64{1, 2, 3}, 3, mpi.Float64, w, 0)
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			_, err := c.Waitall(reqs)
			return err
		}
		buf := make([]float64, 3)
		_, err := c.Recv(buf, 3, mpi.Float64, 0, 0)
		return err
	})
	if got := trace.DetectPattern(col.CommMatrix()); got != trace.PatternStar {
		t.Errorf("pattern = %v, want star", got)
	}
}

func TestTimelineAndFormat(t *testing.T) {
	col := runTraced(t, 2, func(rk *spmd.Rank) error {
		shm := shmem.New(rk)
		env, err := core.NewEnv(mpi.World(rk), shm)
		if err != nil {
			return err
		}
		defer env.Close()
		buf := shmem.MustAlloc[float64](shm, 2)
		return env.P2P(
			core.Sender(0), core.Receiver(1),
			core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
			core.SBuf(buf), core.RBuf(buf),
		)
	})
	tl := col.Timeline(0)
	if !strings.Contains(tl, "send") || !strings.Contains(tl, "recv-post") {
		t.Errorf("timeline missing ops:\n%s", tl)
	}
	// Rank filter.
	tl0 := col.Timeline(0, 0)
	if strings.Contains(tl0, "rank   1") {
		t.Errorf("rank filter leaked rank 1 events:\n%s", tl0)
	}
	fm := trace.FormatMatrix(col.CommMatrix())
	if !strings.Contains(fm, "->1") {
		t.Errorf("matrix format:\n%s", fm)
	}
	// Limit.
	if lines := strings.Count(col.Timeline(2), "\n"); lines > 2 {
		t.Errorf("limit ignored: %d lines", lines)
	}
}

func TestResetAndLen(t *testing.T) {
	col := runTraced(t, 2, func(rk *spmd.Rank) error {
		c := mpi.World(rk)
		c.Barrier()
		return nil
	})
	if col.Len() == 0 {
		t.Fatal("no events collected")
	}
	col.Reset()
	if col.Len() != 0 {
		t.Errorf("reset left %d events", col.Len())
	}
}

func TestSyncCounting(t *testing.T) {
	col := runTraced(t, 2, func(rk *spmd.Rank) error {
		c := mpi.World(rk)
		if rk.ID == 0 {
			r, err := c.Isend([]int32{1}, 1, mpi.Int32, 1, 0)
			if err != nil {
				return err
			}
			_, err = c.Wait(r)
			return err
		}
		buf := make([]int32, 1)
		r, err := c.Irecv(buf, 1, mpi.Int32, 0, 0)
		if err != nil {
			return err
		}
		_, err = c.Waitall([]*mpi.Request{r})
		return err
	})
	st := col.Stats()
	if st.PerKind[simnet.EvWait] != 1 {
		t.Errorf("wait events = %d", st.PerKind[simnet.EvWait])
	}
	if st.PerKind[simnet.EvSync] != 1 {
		t.Errorf("sync events = %d", st.PerKind[simnet.EvSync])
	}
	if st.Syncs != 2 {
		t.Errorf("syncs = %d", st.Syncs)
	}
}
