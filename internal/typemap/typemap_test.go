package typemap

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

type allKinds struct {
	A int8
	B int16
	C int32
	D int64
	E uint8
	F uint16
	G uint32
	H uint64
	I float32
	J float64
	K [4]int32
	L [3]float64
}

func TestLayoutOfAllKinds(t *testing.T) {
	l, err := LayoutOf(allKinds{})
	if err != nil {
		t.Fatal(err)
	}
	wantSize := 1 + 2 + 4 + 8 + 1 + 2 + 4 + 8 + 4 + 8 + 16 + 24
	if l.WireSize != wantSize {
		t.Errorf("wire size %d, want %d", l.WireSize, wantSize)
	}
	if len(l.Fields) != 12 {
		t.Errorf("%d fields", len(l.Fields))
	}
	// Displacements must be dense and increasing.
	off := 0
	for _, f := range l.Fields {
		if f.Offset != off {
			t.Errorf("field %s at %d, want %d", f.Name, f.Offset, off)
		}
		off += f.BlockLen * f.Kind.Size()
	}
	if l.Fields[10].BlockLen != 4 || l.Fields[11].BlockLen != 3 {
		t.Errorf("array block lengths wrong: %+v", l.Fields[10:])
	}
}

func TestLayoutAcceptsVariousInputs(t *testing.T) {
	forms := []any{
		allKinds{},
		&allKinds{},
		[]allKinds{},
		reflect.TypeOf(allKinds{}),
	}
	for _, f := range forms {
		if _, err := LayoutOf(f); err != nil {
			t.Errorf("LayoutOf(%T): %v", f, err)
		}
	}
}

func TestLayoutRejections(t *testing.T) {
	cases := []struct {
		name string
		v    any
		frag string
	}{
		{"pointer field", struct{ P *int32 }{}, "pointer-like"},
		{"slice field", struct{ S []float64 }{}, "pointer-like"},
		{"map field", struct{ M map[int32]int32 }{}, "pointer-like"},
		{"string field", struct{ S string }{}, "pointer-like"},
		{"nested struct", struct{ N struct{ X int32 } }{}, "nested composite"},
		{"array of struct", struct{ A [2]struct{ X int32 } }{}, "composite array"},
		{"plain int", struct{ N int }{}, "fixed-width"},
		{"bool", struct{ B bool }{}, "unsupported"},
		{"not a struct", 42, "not a struct"},
		{"empty struct", struct{}{}, "no fields"},
	}
	for _, tc := range cases {
		_, err := LayoutOf(tc.v)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.frag)
		}
	}
}

func TestUnexportedFieldRejected(t *testing.T) {
	type hidden struct {
		X int32
		y int32 //nolint:unused
	}
	_ = hidden{y: 1}.y
	if _, err := LayoutOf(hidden{}); err == nil {
		t.Error("unexported field accepted")
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	l, err := LayoutOf(allKinds{})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(v allKinds) bool {
		// NaN breaks equality; normalise.
		if math.IsNaN(float64(v.I)) {
			v.I = 0
		}
		if math.IsNaN(v.J) {
			v.J = 0
		}
		for i := range v.L {
			if math.IsNaN(v.L[i]) {
				v.L[i] = 0
			}
		}
		wire := make([]byte, l.WireSize)
		if _, err := l.Encode(wire, &v, 1); err != nil {
			return false
		}
		var out allKinds
		if _, err := l.Decode(wire, &out, 1); err != nil {
			return false
		}
		return v == out
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeStructSlices(t *testing.T) {
	type pt struct {
		X, Y float64
		ID   int32
	}
	l, err := LayoutOf(pt{})
	if err != nil {
		t.Fatal(err)
	}
	in := []pt{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	wire := make([]byte, 3*l.WireSize)
	if _, err := l.Encode(wire, in, 3); err != nil {
		t.Fatal(err)
	}
	out := make([]pt, 3)
	if _, err := l.Decode(wire, out, 3); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("element %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestEncodeBufferChecks(t *testing.T) {
	type pt struct{ X float64 }
	l, _ := LayoutOf(pt{})
	if _, err := l.Encode(make([]byte, 4), &pt{}, 1); err == nil {
		t.Error("short destination accepted")
	}
	if _, err := l.Encode(make([]byte, 8), &pt{}, 2); err == nil {
		t.Error("count 2 on single pointer accepted")
	}
	if _, err := l.Decode(make([]byte, 8), pt{}, 1); err == nil {
		t.Error("non-pointer decode destination accepted")
	}
	var nilp *pt
	if _, err := l.Encode(make([]byte, 8), nilp, 1); err == nil {
		t.Error("nil pointer accepted")
	}
	type other struct{ Y int32 }
	if _, err := l.Encode(make([]byte, 8), &other{}, 1); err == nil {
		t.Error("wrong struct type accepted")
	}
}

func TestSliceCodecsRoundTripProperty(t *testing.T) {
	propF64 := func(in []float64) bool {
		wire := make([]byte, len(in)*8)
		if _, err := EncodeSlice(wire, in, len(in)); err != nil {
			return false
		}
		out := make([]float64, len(in))
		if _, err := DecodeSlice(wire, out, len(in)); err != nil {
			return false
		}
		for i := range in {
			if in[i] != out[i] && !(math.IsNaN(in[i]) && math.IsNaN(out[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(propF64, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	propI32 := func(in []int32) bool {
		wire := make([]byte, len(in)*4)
		if _, err := EncodeSlice(wire, in, len(in)); err != nil {
			return false
		}
		out := make([]int32, len(in))
		if _, err := DecodeSlice(wire, out, len(in)); err != nil {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(propI32, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSliceKindAndLen(t *testing.T) {
	if k, ok := SliceKind([]float64{}); !ok || k != KindFloat64 {
		t.Errorf("float64 slice: %v %v", k, ok)
	}
	if k, ok := SliceKind([]byte{}); !ok || k != KindUint8 {
		t.Errorf("byte slice: %v %v", k, ok)
	}
	if _, ok := SliceKind("hello"); ok {
		t.Error("string classified as slice")
	}
	if _, ok := SliceKind([]string{}); ok {
		t.Error("string slice accepted")
	}
	if n, ok := SliceLen([]int32{1, 2, 3}); !ok || n != 3 {
		t.Errorf("SliceLen = %d %v", n, ok)
	}
}

func TestSliceCodecBounds(t *testing.T) {
	if _, err := EncodeSlice(make([]byte, 8), []float64{1, 2}, 2); err == nil {
		t.Error("short destination accepted")
	}
	if _, err := EncodeSlice(make([]byte, 64), []float64{1}, 2); err == nil {
		t.Error("count beyond source accepted")
	}
	if _, err := DecodeSlice(make([]byte, 4), []float64{0}, 1); err == nil {
		t.Error("short source accepted")
	}
	if _, err := DecodeSlice(make([]byte, 64), []string{"x"}, 1); err == nil {
		t.Error("unsupported type accepted")
	}
}

func TestCacheHitSemantics(t *testing.T) {
	c := NewCache()
	type pt struct{ X float64 }
	l1, hit1, err := c.Get(&pt{})
	if err != nil || hit1 {
		t.Fatalf("first Get: hit=%v err=%v", hit1, err)
	}
	l2, hit2, err := c.Get([]pt{})
	if err != nil || !hit2 || l1 != l2 {
		t.Fatalf("second Get: hit=%v same=%v err=%v", hit2, l1 == l2, err)
	}
	if c.Len() != 1 {
		t.Errorf("cache size %d", c.Len())
	}
	type other struct{ Y int32 }
	if _, hit, _ := c.Get(other{}); hit {
		t.Error("different type hit the cache")
	}
	// The lifetime stat counters mirror the Get outcomes above: one hit
	// (the []pt lookup), two misses (pt and other).
	if hits, misses := c.Stats(); hits != 1 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 1/2", hits, misses)
	}
	// A failed lookup counts in neither.
	if _, _, err := c.Get(struct{ s string }{}); err == nil {
		t.Fatal("unexported field accepted")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 2 {
		t.Errorf("stats after error = %d/%d, want unchanged 1/2", hits, misses)
	}
}

func TestStructCount(t *testing.T) {
	type pt struct{ X float64 }
	l, _ := LayoutOf(pt{})
	if n, err := StructCount(&pt{}, l); err != nil || n != 1 {
		t.Errorf("pointer count = %d %v", n, err)
	}
	if n, err := StructCount(make([]pt, 7), l); err != nil || n != 7 {
		t.Errorf("slice count = %d %v", n, err)
	}
	if _, err := StructCount(pt{}, l); err == nil {
		t.Error("value buffer accepted")
	}
	type other struct{ Y int32 }
	if _, err := StructCount(&other{}, l); err == nil {
		t.Error("mismatched type accepted")
	}
}

func TestLayoutString(t *testing.T) {
	type pt struct {
		X  float64
		ID [2]int32
	}
	l, _ := LayoutOf(pt{})
	s := l.String()
	for _, frag := range []string{"struct pt", "disp=0", "disp=8", "blocklen=2", "float64", "int32"} {
		if !strings.Contains(s, frag) {
			t.Errorf("layout dump missing %q:\n%s", frag, s)
		}
	}
}

func TestKindSizeTotals(t *testing.T) {
	for k, want := range map[Kind]int{
		KindInt8: 1, KindUint8: 1, KindInt16: 2, KindUint16: 2,
		KindInt32: 4, KindUint32: 4, KindFloat32: 4,
		KindInt64: 8, KindUint64: 8, KindFloat64: 8,
		KindInvalid: 0,
	} {
		if k.Size() != want {
			t.Errorf("%v.Size() = %d, want %d", k, k.Size(), want)
		}
	}
}
