//go:build purego

package typemap

import "reflect"

// The purego build is the escape hatch the data plane falls back to when
// unsafe bulk copies are unwanted (auditing, exotic platforms, or CI
// cross-checking the reflection path): every fast-path probe reports
// "not applicable" and Encode/Decode run the reflection walk exclusively.

// FastPathAvailable reports whether the zero-copy pack/unpack path can be
// used in this build; never in a purego build.
func FastPathAvailable() bool { return false }

// NoEscape is the identity function in a purego build: without unsafe there
// is no way to hide a value from escape analysis, so hot callers pay one
// interface-box allocation per call.
func NoEscape(v any) any { return v }

func sliceRaw(any) ([]byte, int, bool) { return nil, 0, false }

func nativeLayoutMatches(reflect.Type, []Field, int) bool { return false }

func structRaw(*Layout, any, int) ([]byte, bool) { return nil, false }
