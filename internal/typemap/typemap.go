// Package typemap extracts wire layouts from Go types, mirroring the
// derived-datatype handling the paper's compiler performs: for a composite
// (struct) buffer it computes, per field, the displacement, block length and
// basic element kind; pointers inside composites and recursively nested
// composites are rejected, exactly as the paper prescribes. For primitive
// buffers it selects the element size that the SHMEM backend uses to pick
// the typed put variant.
//
// Encoding is little-endian and densely packed (no padding), so wire size
// is platform-independent.
package typemap

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// Kind is a basic wire element kind (the analogue of an MPI basic type).
type Kind int

const (
	KindInvalid Kind = iota
	KindInt8
	KindInt16
	KindInt32
	KindInt64
	KindUint8
	KindUint16
	KindUint32
	KindUint64
	KindFloat32
	KindFloat64
)

var kindNames = map[Kind]string{
	KindInt8: "int8", KindInt16: "int16", KindInt32: "int32", KindInt64: "int64",
	KindUint8: "uint8", KindUint16: "uint16", KindUint32: "uint32", KindUint64: "uint64",
	KindFloat32: "float32", KindFloat64: "float64",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Size reports the wire size of one element of this kind, in bytes.
func (k Kind) Size() int {
	switch k {
	case KindInt8, KindUint8:
		return 1
	case KindInt16, KindUint16:
		return 2
	case KindInt32, KindUint32, KindFloat32:
		return 4
	case KindInt64, KindUint64, KindFloat64:
		return 8
	default:
		return 0
	}
}

func kindOf(t reflect.Type) (Kind, bool) {
	switch t.Kind() {
	case reflect.Int8:
		return KindInt8, true
	case reflect.Int16:
		return KindInt16, true
	case reflect.Int32:
		return KindInt32, true
	case reflect.Int64:
		return KindInt64, true
	case reflect.Uint8:
		return KindUint8, true
	case reflect.Uint16:
		return KindUint16, true
	case reflect.Uint32:
		return KindUint32, true
	case reflect.Uint64:
		return KindUint64, true
	case reflect.Float32:
		return KindFloat32, true
	case reflect.Float64:
		return KindFloat64, true
	default:
		return KindInvalid, false
	}
}

// Field is one member of a composite layout: the analogue of one
// (displacement, blocklength, basic type) triple of an MPI struct type.
type Field struct {
	Name     string
	Index    int  // struct field index
	Offset   int  // wire displacement in bytes
	BlockLen int  // number of basic elements (>1 for fixed arrays)
	Kind     Kind // basic element kind
}

// Layout is the wire layout of a composite Go struct type.
type Layout struct {
	GoType   reflect.Type
	Fields   []Field
	WireSize int // bytes per struct value

	// memmove records, once at layout-compile time, that the native Go
	// representation of GoType is byte-identical to the wire encoding
	// (padding-free struct on a little-endian host), so Encode/Decode can
	// bulk-copy instead of walking fields. Always false under `purego`.
	memmove bool
}

// MemmoveSafe reports whether buffers of this layout take the zero-copy
// bulk path in this build on this platform.
func (l *Layout) MemmoveSafe() bool { return l.memmove }

// String renders the layout like a derived-datatype dump.
func (l *Layout) String() string {
	s := fmt.Sprintf("struct %s (%d bytes):", l.GoType.Name(), l.WireSize)
	for _, f := range l.Fields {
		s += fmt.Sprintf("\n  %-12s disp=%-4d blocklen=%-4d type=%s", f.Name, f.Offset, f.BlockLen, f.Kind)
	}
	return s
}

// LayoutOf computes the wire layout of v, which must be a struct value, a
// pointer to struct, or a reflect.Type of a struct. It returns an error for
// the constructs the paper prohibits: pointer (or pointer-like) fields and
// nested composite types. Fixed-size arrays of basic elements are allowed
// and become fields with BlockLen > 1.
func LayoutOf(v any) (*Layout, error) {
	var t reflect.Type
	switch x := v.(type) {
	case reflect.Type:
		t = x
	default:
		t = reflect.TypeOf(v)
	}
	for t != nil && (t.Kind() == reflect.Pointer || t.Kind() == reflect.Slice) {
		t = t.Elem()
	}
	if t == nil || t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("typemap: %v is not a struct type", v)
	}
	l := &Layout{GoType: t}
	off := 0
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		if !sf.IsExported() {
			return nil, fmt.Errorf("typemap: %s.%s is unexported and cannot be communicated", t.Name(), sf.Name)
		}
		ft := sf.Type
		blockLen := 1
		if ft.Kind() == reflect.Array {
			blockLen = ft.Len()
			ft = ft.Elem()
			if ft.Kind() == reflect.Array || ft.Kind() == reflect.Struct {
				return nil, fmt.Errorf("typemap: %s.%s: multidimensional or composite array elements are not supported", t.Name(), sf.Name)
			}
		}
		switch ft.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Map, reflect.Chan, reflect.Func, reflect.Interface, reflect.UnsafePointer, reflect.String:
			return nil, fmt.Errorf("typemap: %s.%s: pointer-like field type %s is prohibited in a communicated composite", t.Name(), sf.Name, sf.Type)
		case reflect.Struct:
			return nil, fmt.Errorf("typemap: %s.%s: nested composite types are prohibited", t.Name(), sf.Name)
		}
		k, ok := kindOf(ft)
		if !ok {
			return nil, fmt.Errorf("typemap: %s.%s: unsupported field type %s (use fixed-width numeric types)", t.Name(), sf.Name, sf.Type)
		}
		l.Fields = append(l.Fields, Field{
			Name:     sf.Name,
			Index:    i,
			Offset:   off,
			BlockLen: blockLen,
			Kind:     k,
		})
		off += blockLen * k.Size()
	}
	if len(l.Fields) == 0 {
		return nil, fmt.Errorf("typemap: struct %s has no fields", t.Name())
	}
	l.WireSize = off
	l.memmove = nativeLayoutMatches(t, l.Fields, off)
	return l, nil
}

func putScalar(dst []byte, k Kind, v reflect.Value) int {
	switch k {
	case KindInt8:
		dst[0] = byte(v.Int())
		return 1
	case KindUint8:
		dst[0] = byte(v.Uint())
		return 1
	case KindInt16:
		binary.LittleEndian.PutUint16(dst, uint16(v.Int()))
		return 2
	case KindUint16:
		binary.LittleEndian.PutUint16(dst, uint16(v.Uint()))
		return 2
	case KindInt32:
		binary.LittleEndian.PutUint32(dst, uint32(v.Int()))
		return 4
	case KindUint32:
		binary.LittleEndian.PutUint32(dst, uint32(v.Uint()))
		return 4
	case KindInt64:
		binary.LittleEndian.PutUint64(dst, uint64(v.Int()))
		return 8
	case KindUint64:
		binary.LittleEndian.PutUint64(dst, v.Uint())
		return 8
	case KindFloat32:
		binary.LittleEndian.PutUint32(dst, math.Float32bits(float32(v.Float())))
		return 4
	case KindFloat64:
		binary.LittleEndian.PutUint64(dst, math.Float64bits(v.Float()))
		return 8
	}
	panic("typemap: bad kind in putScalar")
}

func getScalar(src []byte, k Kind, v reflect.Value) int {
	switch k {
	case KindInt8:
		v.SetInt(int64(int8(src[0])))
		return 1
	case KindUint8:
		v.SetUint(uint64(src[0]))
		return 1
	case KindInt16:
		v.SetInt(int64(int16(binary.LittleEndian.Uint16(src))))
		return 2
	case KindUint16:
		v.SetUint(uint64(binary.LittleEndian.Uint16(src)))
		return 2
	case KindInt32:
		v.SetInt(int64(int32(binary.LittleEndian.Uint32(src))))
		return 4
	case KindUint32:
		v.SetUint(uint64(binary.LittleEndian.Uint32(src)))
		return 4
	case KindInt64:
		v.SetInt(int64(binary.LittleEndian.Uint64(src)))
		return 8
	case KindUint64:
		v.SetUint(binary.LittleEndian.Uint64(src))
		return 8
	case KindFloat32:
		v.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(src))))
		return 4
	case KindFloat64:
		v.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(src)))
		return 8
	}
	panic("typemap: bad kind in getScalar")
}

// Encode serialises count consecutive struct values from v (a *T or []T,
// with T matching the layout) into dst, returning the bytes written. When
// the layout is memmove-safe the whole buffer moves with one bulk copy;
// otherwise the compiled field table drives a reflection walk.
func (l *Layout) Encode(dst []byte, v any, count int) (int, error) {
	need := count * l.WireSize
	if l.memmove {
		if raw, ok := structRaw(l, v, count); ok {
			if len(dst) < need {
				return 0, fmt.Errorf("typemap: encode needs %d bytes, have %d", need, len(dst))
			}
			copy(dst[:need], raw)
			fastEncodes.Add(1)
			return need, nil
		}
	}
	reflectEncodes.Add(1)
	return l.encodeReflect(dst, v, count)
}

// encodeReflect is the per-scalar reflection encoder — the semantic
// reference the fast path is property-tested against.
func (l *Layout) encodeReflect(dst []byte, v any, count int) (int, error) {
	at, err := l.structAt(v, count, false)
	if err != nil {
		return 0, err
	}
	need := count * l.WireSize
	if len(dst) < need {
		return 0, fmt.Errorf("typemap: encode needs %d bytes, have %d", need, len(dst))
	}
	pos := 0
	for i := 0; i < count; i++ {
		sv := at(i)
		for _, f := range l.Fields {
			fv := sv.Field(f.Index)
			if f.BlockLen > 1 || fv.Kind() == reflect.Array {
				for j := 0; j < f.BlockLen; j++ {
					pos += putScalar(dst[pos:], f.Kind, fv.Index(j))
				}
			} else {
				pos += putScalar(dst[pos:], f.Kind, fv)
			}
		}
	}
	return pos, nil
}

// Decode deserialises count struct values from src into v (a *T or []T).
func (l *Layout) Decode(src []byte, v any, count int) (int, error) {
	need := count * l.WireSize
	if l.memmove {
		if raw, ok := structRaw(l, v, count); ok {
			if len(src) < need {
				return 0, fmt.Errorf("typemap: decode needs %d bytes, have %d", need, len(src))
			}
			copy(raw, src[:need])
			fastDecodes.Add(1)
			return need, nil
		}
	}
	reflectDecodes.Add(1)
	return l.decodeReflect(src, v, count)
}

// decodeReflect is the per-scalar reflection decoder.
func (l *Layout) decodeReflect(src []byte, v any, count int) (int, error) {
	at, err := l.structAt(v, count, true)
	if err != nil {
		return 0, err
	}
	need := count * l.WireSize
	if len(src) < need {
		return 0, fmt.Errorf("typemap: decode needs %d bytes, have %d", need, len(src))
	}
	pos := 0
	for i := 0; i < count; i++ {
		sv := at(i)
		for _, f := range l.Fields {
			fv := sv.Field(f.Index)
			if f.BlockLen > 1 || fv.Kind() == reflect.Array {
				for j := 0; j < f.BlockLen; j++ {
					pos += getScalar(src[pos:], f.Kind, fv.Index(j))
				}
			} else {
				pos += getScalar(src[pos:], f.Kind, fv)
			}
		}
	}
	return pos, nil
}

// structAt validates the buffer against the layout and returns an indexer
// over its struct values. It replaces a per-call []reflect.Value
// materialisation: the only allocation is the closure itself.
func (l *Layout) structAt(v any, count int, settable bool) (func(int) reflect.Value, error) {
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Pointer:
		if rv.IsNil() {
			return nil, fmt.Errorf("typemap: nil pointer buffer")
		}
		ev := rv.Elem()
		if ev.Type() != l.GoType {
			return nil, fmt.Errorf("typemap: buffer type %s does not match layout %s", ev.Type(), l.GoType)
		}
		if count != 1 {
			return nil, fmt.Errorf("typemap: count %d on a single-struct pointer buffer", count)
		}
		return func(int) reflect.Value { return ev }, nil
	case reflect.Slice:
		if rv.Type().Elem() != l.GoType {
			return nil, fmt.Errorf("typemap: buffer element type %s does not match layout %s", rv.Type().Elem(), l.GoType)
		}
		if count > rv.Len() {
			return nil, fmt.Errorf("typemap: count %d exceeds buffer length %d", count, rv.Len())
		}
		return rv.Index, nil
	default:
		if settable {
			return nil, fmt.Errorf("typemap: destination buffer must be *T or []T, got %T", v)
		}
		if rv.Type() != l.GoType || count != 1 {
			return nil, fmt.Errorf("typemap: buffer %T does not match layout %s", v, l.GoType)
		}
		return func(int) reflect.Value { return rv }, nil
	}
}
