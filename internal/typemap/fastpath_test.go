package typemap

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// These tests pin the zero-copy fast path to the reflection path: for every
// buffer the two must produce byte-identical wire data and value-identical
// decodes. Under `-tags purego` the fast path compiles out and the same
// tests exercise the reflection path alone, keeping it covered in CI.

func TestSliceFastReflectEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 97 // odd length to catch stride mistakes
	bufs := []any{
		randFloat64s(rng, n), randFloat32s(rng, n),
		randInts[int64](rng, n), randInts[int32](rng, n),
		randInts[int16](rng, n), randInts[int8](rng, n),
		randInts[uint64](rng, n), randInts[uint32](rng, n),
		randInts[uint16](rng, n), randInts[uint8](rng, n),
	}
	for _, src := range bufs {
		name := fmt.Sprintf("%T", src)
		k, ok := SliceKind(src)
		if !ok {
			t.Fatalf("%s: SliceKind not supported", name)
		}
		esize := k.Size()
		fast := make([]byte, n*esize)
		slow := make([]byte, n*esize)
		if _, err := EncodeSlice(fast, src, n); err != nil {
			t.Fatalf("%s: EncodeSlice: %v", name, err)
		}
		if _, err := encodeSliceReflect(slow, src, n); err != nil {
			t.Fatalf("%s: encodeSliceReflect: %v", name, err)
		}
		if !bytes.Equal(fast, slow) {
			t.Fatalf("%s: fast and reflection encodes differ", name)
		}
		dstFast := newSliceLike(src, n)
		dstSlow := newSliceLike(src, n)
		if _, err := DecodeSlice(fast, dstFast, n); err != nil {
			t.Fatalf("%s: DecodeSlice: %v", name, err)
		}
		if _, err := decodeSliceReflect(fast, dstSlow, n); err != nil {
			t.Fatalf("%s: decodeSliceReflect: %v", name, err)
		}
		if !reflect.DeepEqual(dstFast, src) || !reflect.DeepEqual(dstSlow, src) {
			t.Fatalf("%s: decode did not round-trip", name)
		}
	}
}

func TestSliceFastPathBounds(t *testing.T) {
	s := []uint16{1, 2, 3}
	if _, err := EncodeSlice(make([]byte, 6), s, 4); err == nil {
		t.Fatal("count beyond buffer length must fail")
	}
	if _, err := EncodeSlice(make([]byte, 5), s, 3); err == nil {
		t.Fatal("short destination must fail")
	}
	if _, err := DecodeSlice(make([]byte, 5), s, 3); err == nil {
		t.Fatal("short source must fail")
	}
	// Partial counts write/read only the prefix.
	wire := make([]byte, 4)
	if n, err := EncodeSlice(wire, s, 2); err != nil || n != 4 {
		t.Fatalf("partial encode: n=%d err=%v", n, err)
	}
	got := []uint16{9, 9, 9}
	if n, err := DecodeSlice(wire, got, 2); err != nil || n != 4 {
		t.Fatalf("partial decode: n=%d err=%v", n, err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 9 {
		t.Fatalf("partial decode wrote wrong elements: %v", got)
	}
}

// paddedPair has interior padding (7 bytes after A), so its native layout
// can never match the densely packed wire layout.
type paddedPair struct {
	A int8
	B int64
}

func TestStructMemmoveEligibility(t *testing.T) {
	dense, err := LayoutOf(benchVec{})
	if err != nil {
		t.Fatal(err)
	}
	if want := FastPathAvailable(); dense.MemmoveSafe() != want {
		t.Fatalf("padding-free struct: MemmoveSafe=%v, want %v", dense.MemmoveSafe(), want)
	}
	padded, err := LayoutOf(paddedPair{})
	if err != nil {
		t.Fatal(err)
	}
	if padded.MemmoveSafe() {
		t.Fatal("padded struct must not be memmove-safe")
	}
	if padded.WireSize != 9 {
		t.Fatalf("padded wire size = %d, want 9", padded.WireSize)
	}
}

type benchVec struct {
	X, Y, Z float64
	ID      uint64
}

func TestStructFastReflectEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, proto := range []any{benchVec{}, paddedPair{}} {
		name := fmt.Sprintf("%T", proto)
		l, err := LayoutOf(proto)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		const n = 33
		src := reflect.MakeSlice(reflect.SliceOf(l.GoType), n, n)
		for i := 0; i < n; i++ {
			fillRandom(rng, src.Index(i))
		}
		fast := make([]byte, n*l.WireSize)
		slow := make([]byte, n*l.WireSize)
		if _, err := l.Encode(fast, src.Interface(), n); err != nil {
			t.Fatalf("%s: Encode: %v", name, err)
		}
		if _, err := l.encodeReflect(slow, src.Interface(), n); err != nil {
			t.Fatalf("%s: encodeReflect: %v", name, err)
		}
		if !bytes.Equal(fast, slow) {
			t.Fatalf("%s: fast and reflection encodes differ", name)
		}
		dstFast := reflect.MakeSlice(reflect.SliceOf(l.GoType), n, n)
		dstSlow := reflect.MakeSlice(reflect.SliceOf(l.GoType), n, n)
		if _, err := l.Decode(fast, dstFast.Interface(), n); err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		if _, err := l.decodeReflect(fast, dstSlow.Interface(), n); err != nil {
			t.Fatalf("%s: decodeReflect: %v", name, err)
		}
		if !reflect.DeepEqual(dstFast.Interface(), src.Interface()) ||
			!reflect.DeepEqual(dstSlow.Interface(), src.Interface()) {
			t.Fatalf("%s: decode did not round-trip", name)
		}
	}
}

// TestRandomLayoutEquivalence is the property test from the issue: build
// random struct layouts with reflect.StructOf, fill them with random
// values, and assert the fast and reflection paths agree byte-for-byte on
// encode and value-for-value on decode — whether or not the layout happens
// to be memmove-safe.
func TestRandomLayoutEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	scalars := []reflect.Type{
		reflect.TypeOf(int8(0)), reflect.TypeOf(int16(0)),
		reflect.TypeOf(int32(0)), reflect.TypeOf(int64(0)),
		reflect.TypeOf(uint8(0)), reflect.TypeOf(uint16(0)),
		reflect.TypeOf(uint32(0)), reflect.TypeOf(uint64(0)),
		reflect.TypeOf(float32(0)), reflect.TypeOf(float64(0)),
	}
	sawMemmove, sawPadded := false, false
	for trial := 0; trial < 200; trial++ {
		nf := 1 + rng.Intn(6)
		fields := make([]reflect.StructField, nf)
		for i := range fields {
			ft := scalars[rng.Intn(len(scalars))]
			if rng.Intn(4) == 0 {
				ft = reflect.ArrayOf(1+rng.Intn(4), ft)
			}
			fields[i] = reflect.StructField{
				Name: fmt.Sprintf("F%d", i),
				Type: ft,
			}
		}
		st := reflect.StructOf(fields)
		l, err := LayoutOf(st)
		if err != nil {
			t.Fatalf("trial %d (%s): LayoutOf: %v", trial, st, err)
		}
		if l.MemmoveSafe() {
			sawMemmove = true
		} else {
			sawPadded = true
		}
		n := 1 + rng.Intn(8)
		src := reflect.MakeSlice(reflect.SliceOf(st), n, n)
		for i := 0; i < n; i++ {
			fillRandom(rng, src.Index(i))
		}
		fast := make([]byte, n*l.WireSize)
		slow := make([]byte, n*l.WireSize)
		if _, err := l.Encode(fast, src.Interface(), n); err != nil {
			t.Fatalf("trial %d (%s): Encode: %v", trial, st, err)
		}
		if _, err := l.encodeReflect(slow, src.Interface(), n); err != nil {
			t.Fatalf("trial %d (%s): encodeReflect: %v", trial, st, err)
		}
		if !bytes.Equal(fast, slow) {
			t.Fatalf("trial %d (%s): fast and reflection encodes differ", trial, st)
		}
		dst := reflect.MakeSlice(reflect.SliceOf(st), n, n)
		if _, err := l.Decode(fast, dst.Interface(), n); err != nil {
			t.Fatalf("trial %d (%s): Decode: %v", trial, st, err)
		}
		if !reflect.DeepEqual(dst.Interface(), src.Interface()) {
			t.Fatalf("trial %d (%s): decode did not round-trip", trial, st)
		}
	}
	if FastPathAvailable() && !sawMemmove {
		t.Error("no random layout was memmove-safe; generator too narrow")
	}
	if !sawPadded {
		t.Error("no random layout was padded; generator too narrow")
	}
}

// FuzzSliceRoundTrip feeds arbitrary wire bytes through decode → encode on
// both paths and requires fixed-point behaviour and path agreement.
func FuzzSliceRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		count := len(data) / 8
		wire := data[:count*8]
		a := make([]uint64, count)
		b := make([]uint64, count)
		if _, err := DecodeSlice(wire, a, count); err != nil {
			t.Fatal(err)
		}
		if _, err := decodeSliceReflect(wire, b, count); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("fast and reflection decodes differ")
		}
		out := make([]byte, count*8)
		if _, err := EncodeSlice(out, a, count); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, wire) {
			t.Fatal("decode/encode is not a fixed point")
		}
	})
}

// FuzzStructRoundTrip does the same through a padding-free composite layout.
func FuzzStructRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xab}, 96))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := LayoutOf(benchVec{})
		if err != nil {
			t.Fatal(err)
		}
		count := len(data) / l.WireSize
		wire := data[:count*l.WireSize]
		a := make([]benchVec, count)
		b := make([]benchVec, count)
		if _, err := l.Decode(wire, a, count); err != nil {
			t.Fatal(err)
		}
		if _, err := l.decodeReflect(wire, b, count); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("fast and reflection decodes differ")
		}
		out := make([]byte, count*l.WireSize)
		if _, err := l.Encode(out, a, count); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, wire) {
			t.Fatal("decode/encode is not a fixed point")
		}
	})
}

func randFloat64s(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func randFloat32s(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func randInts[T int8 | int16 | int32 | int64 | uint8 | uint16 | uint32 | uint64](rng *rand.Rand, n int) []T {
	s := make([]T, n)
	for i := range s {
		s[i] = T(rng.Uint64())
	}
	return s
}

func newSliceLike(v any, n int) any {
	return reflect.MakeSlice(reflect.TypeOf(v), n, n).Interface()
}

func fillRandom(rng *rand.Rand, v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillRandom(rng, v.Field(i))
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillRandom(rng, v.Index(i))
		}
	case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(rng.Uint64()))
	case reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(rng.Uint64())
	case reflect.Float32, reflect.Float64:
		v.SetFloat(rng.NormFloat64())
	default:
		panic("fillRandom: unsupported kind " + v.Kind().String())
	}
}
