package typemap

import "sync/atomic"

// Process-wide pack/unpack path counters. The telemetry layer exposes them
// as pull gauges so commstat can report what share of traffic took the
// zero-copy fast path versus the reflection fallback.
var (
	fastEncodes    atomic.Int64
	fastDecodes    atomic.Int64
	reflectEncodes atomic.Int64
	reflectDecodes atomic.Int64
)

// PathStats reports the process-lifetime number of encode and decode calls
// served by the memmove fast path and by the reflection fallback.
func PathStats() (fastEnc, fastDec, reflectEnc, reflectDec int64) {
	return fastEncodes.Load(), fastDecodes.Load(), reflectEncodes.Load(), reflectDecodes.Load()
}
