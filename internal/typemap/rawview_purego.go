//go:build purego

package typemap

import "reflect"

// RawBytes reports ok=false in a purego build: without unsafe there is no
// native byte view, and the RMA data plane falls back to its reflection
// copy path (the correctness oracle).
func RawBytes(any) ([]byte, int, bool) { return nil, 0, false }

// TypeWord returns a stable, non-zero identity word for v's dynamic type.
// The purego build goes through reflect: the *rtype pointer inside a
// reflect.Type is the same identity the interface header carries.
func TypeWord(v any) uintptr {
	return reflect.ValueOf(reflect.TypeOf(v)).Pointer()
}
