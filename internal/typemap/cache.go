package typemap

import (
	"reflect"
	"sync"
	"sync/atomic"
)

// Cache memoises struct layouts per scope, mirroring the paper's rule that a
// committed MPI struct type "is reused within the function scope for any
// communication directive with buffers of the same type". The directive
// environment holds one Cache per scope; the cost model charges the commit
// cost on a miss and a (much smaller) lookup cost on a hit.
type Cache struct {
	mu sync.Mutex
	m  map[reflect.Type]*Layout

	hits, misses atomic.Int64
}

// NewCache creates an empty layout cache.
func NewCache() *Cache {
	return &Cache{m: make(map[reflect.Type]*Layout)}
}

// Get returns the layout for v's struct type, computing and caching it on
// first use. hit reports whether the layout was already cached.
func (c *Cache) Get(v any) (l *Layout, hit bool, err error) {
	t := reflect.TypeOf(v)
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t != nil && t.Kind() == reflect.Slice && t.Elem().Kind() == reflect.Struct {
		t = t.Elem()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if l, ok := c.m[t]; ok {
		c.hits.Add(1)
		return l, true, nil
	}
	l, err = LayoutOf(v)
	if err != nil {
		return nil, false, err
	}
	c.misses.Add(1)
	c.m[t] = l
	return l, false, nil
}

// Stats reports the cache's lifetime hit and miss counts (failed lookups
// are counted in neither).
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of cached layouts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
