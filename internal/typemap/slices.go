package typemap

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// SliceKind reports the basic element kind of a primitive slice buffer
// ([]int32, []float64, ...). ok is false for anything else.
func SliceKind(v any) (Kind, bool) {
	t := reflect.TypeOf(v)
	if t == nil || t.Kind() != reflect.Slice {
		return KindInvalid, false
	}
	return kindOf(t.Elem())
}

// SliceLen reports the length of a primitive slice buffer.
func SliceLen(v any) (int, bool) {
	if _, ok := SliceKind(v); !ok {
		return 0, false
	}
	return reflect.ValueOf(v).Len(), true
}

// EncodeSlice serialises the first count elements of the primitive slice v
// into dst, returning bytes written. []byte moves with a plain copy; other
// fixed-width primitive slices take the zero-copy bulk path when the host
// representation matches the wire format, and the per-element reflection
// walk otherwise (always, under `purego`).
func EncodeSlice(dst []byte, v any, count int) (int, error) {
	if s, ok := v.([]byte); ok {
		fastEncodes.Add(1)
		return encBytes(dst, s, count)
	}
	if raw, esize, ok := sliceRaw(v); ok {
		slen := 0
		if esize > 0 {
			slen = len(raw) / esize
		}
		if count > slen {
			return 0, fmt.Errorf("typemap: count %d exceeds buffer length %d", count, slen)
		}
		need := count * esize
		if len(dst) < need {
			return 0, fmt.Errorf("typemap: encode needs %d bytes, have %d", need, len(dst))
		}
		copy(dst[:need], raw[:need])
		fastEncodes.Add(1)
		return need, nil
	}
	reflectEncodes.Add(1)
	return encodeSliceReflect(dst, v, count)
}

func encodeSliceReflect(dst []byte, v any, count int) (int, error) {
	switch s := v.(type) {
	case []byte:
		return encBytes(dst, s, count)
	case []float64:
		return encFixed(dst, len(s), count, 8, func(d []byte, i int) {
			binary.LittleEndian.PutUint64(d, math.Float64bits(s[i]))
		})
	case []float32:
		return encFixed(dst, len(s), count, 4, func(d []byte, i int) {
			binary.LittleEndian.PutUint32(d, math.Float32bits(s[i]))
		})
	case []int32:
		return encFixed(dst, len(s), count, 4, func(d []byte, i int) {
			binary.LittleEndian.PutUint32(d, uint32(s[i]))
		})
	case []int64:
		return encFixed(dst, len(s), count, 8, func(d []byte, i int) {
			binary.LittleEndian.PutUint64(d, uint64(s[i]))
		})
	case []uint32:
		return encFixed(dst, len(s), count, 4, func(d []byte, i int) {
			binary.LittleEndian.PutUint32(d, s[i])
		})
	case []uint64:
		return encFixed(dst, len(s), count, 8, func(d []byte, i int) {
			binary.LittleEndian.PutUint64(d, s[i])
		})
	case []uint16:
		return encFixed(dst, len(s), count, 2, func(d []byte, i int) {
			binary.LittleEndian.PutUint16(d, s[i])
		})
	case []int16:
		return encFixed(dst, len(s), count, 2, func(d []byte, i int) {
			binary.LittleEndian.PutUint16(d, uint16(s[i]))
		})
	case []int8:
		return encFixed(dst, len(s), count, 1, func(d []byte, i int) { d[0] = byte(s[i]) })
	default:
		// reflect.TypeOf instead of %T: the fmt verb would leak v and force
		// an interface box on every (hot, non-erroring) call.
		return 0, fmt.Errorf("typemap: unsupported slice buffer type %s", reflect.TypeOf(v))
	}
}

// DecodeSlice deserialises count elements from src into the primitive slice
// v, using the same bulk/reflection dispatch as EncodeSlice.
func DecodeSlice(src []byte, v any, count int) (int, error) {
	if s, ok := v.([]byte); ok {
		fastDecodes.Add(1)
		return decBytes(src, s, count)
	}
	if raw, esize, ok := sliceRaw(v); ok {
		slen := 0
		if esize > 0 {
			slen = len(raw) / esize
		}
		if count > slen {
			return 0, fmt.Errorf("typemap: count %d exceeds buffer length %d", count, slen)
		}
		need := count * esize
		if len(src) < need {
			return 0, fmt.Errorf("typemap: decode needs %d bytes, have %d", need, len(src))
		}
		copy(raw[:need], src[:need])
		fastDecodes.Add(1)
		return need, nil
	}
	reflectDecodes.Add(1)
	return decodeSliceReflect(src, v, count)
}

func decodeSliceReflect(src []byte, v any, count int) (int, error) {
	switch s := v.(type) {
	case []byte:
		return decBytes(src, s, count)
	case []float64:
		return decFixed(src, len(s), count, 8, func(d []byte, i int) {
			s[i] = math.Float64frombits(binary.LittleEndian.Uint64(d))
		})
	case []float32:
		return decFixed(src, len(s), count, 4, func(d []byte, i int) {
			s[i] = math.Float32frombits(binary.LittleEndian.Uint32(d))
		})
	case []int32:
		return decFixed(src, len(s), count, 4, func(d []byte, i int) {
			s[i] = int32(binary.LittleEndian.Uint32(d))
		})
	case []int64:
		return decFixed(src, len(s), count, 8, func(d []byte, i int) {
			s[i] = int64(binary.LittleEndian.Uint64(d))
		})
	case []uint32:
		return decFixed(src, len(s), count, 4, func(d []byte, i int) {
			s[i] = binary.LittleEndian.Uint32(d)
		})
	case []uint64:
		return decFixed(src, len(s), count, 8, func(d []byte, i int) {
			s[i] = binary.LittleEndian.Uint64(d)
		})
	case []uint16:
		return decFixed(src, len(s), count, 2, func(d []byte, i int) {
			s[i] = binary.LittleEndian.Uint16(d)
		})
	case []int16:
		return decFixed(src, len(s), count, 2, func(d []byte, i int) {
			s[i] = int16(binary.LittleEndian.Uint16(d))
		})
	case []int8:
		return decFixed(src, len(s), count, 1, func(d []byte, i int) { s[i] = int8(d[0]) })
	default:
		return 0, fmt.Errorf("typemap: unsupported slice buffer type %s", reflect.TypeOf(v))
	}
}

func encBytes(dst, s []byte, count int) (int, error) {
	if count > len(s) {
		return 0, fmt.Errorf("typemap: count %d exceeds buffer length %d", count, len(s))
	}
	if len(dst) < count {
		return 0, fmt.Errorf("typemap: encode needs %d bytes, have %d", count, len(dst))
	}
	copy(dst, s[:count])
	return count, nil
}

func decBytes(src, s []byte, count int) (int, error) {
	if count > len(s) {
		return 0, fmt.Errorf("typemap: count %d exceeds buffer length %d", count, len(s))
	}
	if len(src) < count {
		return 0, fmt.Errorf("typemap: decode needs %d bytes, have %d", count, len(src))
	}
	copy(s[:count], src[:count])
	return count, nil
}

func encFixed(dst []byte, slen, count, esize int, put func([]byte, int)) (int, error) {
	if count > slen {
		return 0, fmt.Errorf("typemap: count %d exceeds buffer length %d", count, slen)
	}
	need := count * esize
	if len(dst) < need {
		return 0, fmt.Errorf("typemap: encode needs %d bytes, have %d", need, len(dst))
	}
	for i := 0; i < count; i++ {
		put(dst[i*esize:], i)
	}
	return need, nil
}

func decFixed(src []byte, slen, count, esize int, get func([]byte, int)) (int, error) {
	if count > slen {
		return 0, fmt.Errorf("typemap: count %d exceeds buffer length %d", count, slen)
	}
	need := count * esize
	if len(src) < need {
		return 0, fmt.Errorf("typemap: decode needs %d bytes, have %d", need, len(src))
	}
	for i := 0; i < count; i++ {
		get(src[i*esize:], i)
	}
	return need, nil
}
