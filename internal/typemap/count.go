package typemap

import (
	"fmt"
	"reflect"
)

// StructCount reports the element capacity of a struct buffer: 1 for *T,
// len for []T, where T matches the layout.
func StructCount(buf any, l *Layout) (int, error) {
	rv := reflect.ValueOf(buf)
	switch rv.Kind() {
	case reflect.Pointer:
		if rv.IsNil() {
			return 0, fmt.Errorf("typemap: nil pointer buffer")
		}
		if rv.Type().Elem() != l.GoType {
			return 0, fmt.Errorf("typemap: buffer %T does not match layout %s", buf, l.GoType)
		}
		return 1, nil
	case reflect.Slice:
		if rv.Type().Elem() != l.GoType {
			return 0, fmt.Errorf("typemap: buffer %T does not match layout %s", buf, l.GoType)
		}
		return rv.Len(), nil
	default:
		return 0, fmt.Errorf("typemap: struct buffer must be *T or []T, got %T", buf)
	}
}
