//go:build !purego

package typemap

import (
	"reflect"
	"unsafe"
)

// The zero-copy fast path: when a buffer's native in-memory representation
// is byte-identical to its wire encoding, Encode/EncodeSlice degenerate to
// a single bulk copy instead of a per-scalar reflection walk. That holds
// exactly when (a) the host is little-endian, since the wire format is
// little-endian, and (b) for composites, Go laid the struct out with no
// padding, so field offsets and total size match the densely packed wire
// layout. The `purego` build tag removes this file and every caller falls
// back to the reflection path, which stays the source of truth for
// correctness (the round-trip property tests assert byte equality).

// hostLittleEndian reports whether this platform stores integers
// little-endian, i.e. whether native scalar bytes equal wire bytes.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// FastPathAvailable reports whether the zero-copy pack/unpack path can be
// used in this build on this platform.
func FastPathAvailable() bool { return hostLittleEndian }

// sliceRaw returns the raw backing bytes of a supported primitive slice,
// its element size, and ok=true when the memmove fast path applies. The
// returned bytes alias v's storage.
func sliceRaw(v any) (raw []byte, esize int, ok bool) {
	if !hostLittleEndian {
		return nil, 0, false
	}
	switch s := v.(type) {
	case []float64:
		return primRaw(s, 8)
	case []float32:
		return primRaw(s, 4)
	case []int64:
		return primRaw(s, 8)
	case []int32:
		return primRaw(s, 4)
	case []int16:
		return primRaw(s, 2)
	case []int8:
		return primRaw(s, 1)
	case []uint64:
		return primRaw(s, 8)
	case []uint32:
		return primRaw(s, 4)
	case []uint16:
		return primRaw(s, 2)
	default:
		// []byte / []uint8 is handled by the dedicated copy path in
		// EncodeSlice/DecodeSlice before this is consulted.
		return nil, 0, false
	}
}

// primRaw reinterprets a fixed-width primitive slice as its backing bytes.
func primRaw[T any](s []T, esize int) ([]byte, int, bool) {
	if len(s) == 0 {
		return nil, esize, true
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*esize), esize, true
}

// nativeLayoutMatches reports whether t's native layout is byte-identical
// to the computed wire layout: little-endian host, no padding anywhere
// (every field's native offset equals its wire displacement and the struct
// size equals the wire size). Fixed arrays of basics are contiguous in both
// representations, so they need no extra check.
func nativeLayoutMatches(t reflect.Type, fields []Field, wireSize int) bool {
	if !hostLittleEndian {
		return false
	}
	if t.Size() != uintptr(wireSize) {
		return false
	}
	for _, f := range fields {
		if t.Field(f.Index).Offset != uintptr(f.Offset) {
			return false
		}
	}
	return true
}

// structRaw returns the raw backing bytes of count struct values in v
// (a *T or []T matching the layout), ok=false when v does not qualify —
// mismatched types and bad counts fall through to the reflection path,
// which produces the canonical error.
func structRaw(l *Layout, v any, count int) (raw []byte, ok bool) {
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Pointer:
		if rv.IsNil() || rv.Type().Elem() != l.GoType || count != 1 {
			return nil, false
		}
		return unsafe.Slice((*byte)(rv.UnsafePointer()), l.GoType.Size()), true
	case reflect.Slice:
		if rv.Type().Elem() != l.GoType || count > rv.Len() {
			return nil, false
		}
		if count == 0 {
			return nil, true
		}
		n := count * int(l.GoType.Size())
		return unsafe.Slice((*byte)(rv.UnsafePointer()), n), true
	default:
		return nil, false
	}
}
