//go:build !purego

package typemap

import (
	"reflect"
	"unsafe"
)

// RawBytes returns the raw in-memory backing bytes of slice v, its element
// size, and ok=true when this build can take the native view. It is the
// RMA data plane's bulk-copy primitive: a Put or Get between two buffers of
// the *same Go type* is one memmove over these views, which is correct on
// any host byte order and even for padded structs — both sides share one
// in-memory layout, so no wire (re)encoding happens. That is a weaker
// precondition than the Encode/Decode fast path (which additionally needs
// the native layout to equal the little-endian wire layout), so RawBytes
// deliberately does not consult nativeLayoutMatches or hostLittleEndian.
//
// Pointer-freedom of the element type is the caller's obligation (window
// and symmetric-heap creation validate it); RawBytes itself only
// reinterprets storage. The returned bytes alias v's backing array. In a
// purego build RawBytes always reports ok=false and callers fall back to
// the reflection copy path.
// TypeWord returns a stable, non-zero identity word for v's dynamic type —
// the interface header's type pointer. Two values share a TypeWord exactly
// when they have the same dynamic type, which makes it a compact map-key
// ingredient for per-type caches on hot paths (a plain-old-data key hashes
// much faster than one embedding a reflect.Type interface). The purego
// build derives the same identity through reflect.
func TypeWord(v any) uintptr {
	return uintptr((*[2]unsafe.Pointer)(unsafe.Pointer(&v))[0])
}

func RawBytes(v any) (raw []byte, esize int, ok bool) {
	switch s := v.(type) {
	case []byte:
		return s, 1, true
	case []float64:
		return primRaw(s, 8)
	case []float32:
		return primRaw(s, 4)
	case []int64:
		return primRaw(s, 8)
	case []int32:
		return primRaw(s, 4)
	case []int16:
		return primRaw(s, 2)
	case []int8:
		return primRaw(s, 1)
	case []uint64:
		return primRaw(s, 8)
	case []uint32:
		return primRaw(s, 4)
	case []uint16:
		return primRaw(s, 2)
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Slice {
		return nil, 0, false
	}
	esize = int(rv.Type().Elem().Size())
	if rv.Len() == 0 || esize == 0 {
		return nil, esize, true
	}
	return unsafe.Slice((*byte)(rv.UnsafePointer()), rv.Len()*esize), esize, true
}
