//go:build !purego

package typemap

import "unsafe"

// This file quarantines the escape-analysis laundering behind the zero-copy
// fast path. It is the only place in the repository where a uintptr is
// converted back to a pointer — exactly the pattern `go vet`'s unsafeptr
// heuristic exists to flag — so plain `go vet ./...` (and gopls) reports
// this package. That is expected, not a regression: vet this package with
// `go vet -unsafeptr=false ./internal/typemap/`, which is what `make
// verify` does (every other package is vetted with default flags). See
// README "Install & test". Keep any future laundering in this file so the
// carve-out stays auditable.

// NoEscape hides v from escape analysis. The reflection walk captures its
// buffer argument in closures and reflect.Values, which marks every caller's
// `any` parameter as leaking and forces a heap-allocated interface box per
// call — even on the zero-copy path. Encode/Decode/StructCount never retain
// their buffer beyond the call, so the hint is sound for them; callers must
// uphold the same contract, with one hazard beyond mere retention: the
// laundered reference must never be stored in a heap object while the call
// is in flight (see mpi.Recv vs mpi.Irecv), because the GC does not fix up
// hidden pointers if the owning stack moves. The purego build replaces this
// with the identity function and accepts the per-call box.
func NoEscape(v any) any {
	return *(*any)(noescape(unsafe.Pointer(&v)))
}

// noescape is the standard identity-through-uintptr laundering trick (as in
// the runtime): the result is the same pointer, but because the round-trip
// spans two statements the compiler cannot trace it back to p.
//
//go:nosplit
func noescape(p unsafe.Pointer) unsafe.Pointer {
	x := uintptr(p)
	return unsafe.Pointer(x ^ 0)
}
