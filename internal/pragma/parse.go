package pragma

import (
	"fmt"
	"strings"
)

// BufRef is one entry of an sbuf/rbuf clause: a buffer name with an
// optional element offset (`buf`, `&buf[expr]` or `buf[expr]`).
type BufRef struct {
	Name   string
	Offset Expr // nil for the whole buffer
}

func (b BufRef) String() string {
	if b.Offset == nil {
		return b.Name
	}
	return "&" + b.Name + "[" + b.Offset.String() + "]"
}

// Spec is one parsed directive.
type Spec struct {
	// Params reports a comm_parameters directive (else comm_p2p).
	Params bool

	Sender   Expr
	Receiver Expr
	SendWhen Expr
	RecvWhen Expr
	Count    Expr

	SBuf []BufRef
	RBuf []BufRef

	Target      string // TARGET_COMM_* keyword, empty if absent
	PlaceSync   string // END_PARAM_REGION etc., empty if absent
	MaxCommIter Expr
}

// Parse parses one directive line. The leading "#pragma" is optional; the
// directive name (comm_p2p or comm_parameters) is required; clauses follow
// in any order, exactly as in the paper's listings.
func Parse(line string) (*Spec, error) {
	line = strings.TrimSpace(line)
	line = strings.TrimPrefix(line, "#")
	toks, err := lex(line)
	if err != nil {
		return nil, err
	}
	p := &exprParser{toks: toks}

	if p.peek().kind == tokIdent && p.peek().text == "pragma" {
		p.next()
	}
	head := p.next()
	if head.kind != tokIdent {
		return nil, fmt.Errorf("pragma: expected directive name, got %q", head.text)
	}
	s := &Spec{}
	switch head.text {
	case "comm_p2p":
	case "comm_parameters":
		s.Params = true
	default:
		return nil, fmt.Errorf("pragma: unknown directive %q (want comm_p2p or comm_parameters)", head.text)
	}

	seen := map[string]bool{}
	for p.peek().kind != tokEOF {
		name := p.next()
		if name.kind != tokIdent {
			return nil, fmt.Errorf("pragma: expected clause name, got %q at %d", name.text, name.pos)
		}
		if !p.accept("(") {
			return nil, fmt.Errorf("pragma: clause %s: missing (", name.text)
		}
		if seen[name.text] {
			return nil, fmt.Errorf("pragma: duplicate clause %s", name.text)
		}
		seen[name.text] = true
		switch name.text {
		case "sender", "receiver", "sendwhen", "receivewhen", "count", "max_comm_iter":
			e, err := p.parseOr()
			if err != nil {
				return nil, fmt.Errorf("pragma: clause %s: %w", name.text, err)
			}
			switch name.text {
			case "sender":
				s.Sender = e
			case "receiver":
				s.Receiver = e
			case "sendwhen":
				s.SendWhen = e
			case "receivewhen":
				s.RecvWhen = e
			case "count":
				s.Count = e
			case "max_comm_iter":
				s.MaxCommIter = e
			}
		case "sbuf", "rbuf", "vsbuf": // Listing 5 of the paper spells one sbuf "vsbuf"
			refs, err := p.parseBufList()
			if err != nil {
				return nil, fmt.Errorf("pragma: clause %s: %w", name.text, err)
			}
			if name.text == "rbuf" {
				s.RBuf = refs
			} else {
				s.SBuf = refs
			}
		case "target", "place_sync":
			kw := p.next()
			if kw.kind != tokIdent {
				return nil, fmt.Errorf("pragma: clause %s: expected keyword", name.text)
			}
			if name.text == "target" {
				s.Target = kw.text
			} else {
				s.PlaceSync = kw.text
			}
		default:
			return nil, fmt.Errorf("pragma: unknown clause %q", name.text)
		}
		if !p.accept(")") {
			return nil, fmt.Errorf("pragma: clause %s: missing )", name.text)
		}
	}
	if !s.Params {
		if s.PlaceSync != "" {
			return nil, fmt.Errorf("pragma: place_sync may only be used with comm_parameters")
		}
		if s.MaxCommIter != nil {
			return nil, fmt.Errorf("pragma: max_comm_iter may only be used with comm_parameters")
		}
	}
	return s, nil
}

// MustParse is Parse that panics, for package-level directive constants.
func MustParse(line string) *Spec {
	s, err := Parse(line)
	if err != nil {
		panic(err)
	}
	return s
}

// parseBufList parses `ref (',' ref)*` where ref is `[&] ident [ '[' expr ']' ]`.
func (p *exprParser) parseBufList() ([]BufRef, error) {
	var out []BufRef
	for {
		p.accept("&") // the address-of in &buf[p] is decorative here
		id := p.next()
		if id.kind != tokIdent {
			return nil, fmt.Errorf("expected buffer name, got %q", id.text)
		}
		ref := BufRef{Name: id.text}
		if p.accept("[") {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.accept("]") {
				return nil, fmt.Errorf("missing ] after %s offset", id.text)
			}
			ref.Offset = e
		}
		out = append(out, ref)
		if !p.accept(",") {
			return out, nil
		}
	}
}

// String renders the spec back as pragma text.
func (s *Spec) String() string {
	var b strings.Builder
	if s.Params {
		b.WriteString("#pragma comm_parameters")
	} else {
		b.WriteString("#pragma comm_p2p")
	}
	clause := func(name string, e Expr) {
		if e != nil {
			fmt.Fprintf(&b, " %s(%s)", name, e)
		}
	}
	clause("sender", s.Sender)
	clause("receiver", s.Receiver)
	clause("sendwhen", s.SendWhen)
	clause("receivewhen", s.RecvWhen)
	if len(s.SBuf) > 0 {
		refs := make([]string, len(s.SBuf))
		for i, r := range s.SBuf {
			refs[i] = r.String()
		}
		fmt.Fprintf(&b, " sbuf(%s)", strings.Join(refs, ","))
	}
	if len(s.RBuf) > 0 {
		refs := make([]string, len(s.RBuf))
		for i, r := range s.RBuf {
			refs[i] = r.String()
		}
		fmt.Fprintf(&b, " rbuf(%s)", strings.Join(refs, ","))
	}
	clause("count", s.Count)
	if s.Target != "" {
		fmt.Fprintf(&b, " target(%s)", s.Target)
	}
	clause("max_comm_iter", s.MaxCommIter)
	if s.PlaceSync != "" {
		fmt.Fprintf(&b, " place_sync(%s)", s.PlaceSync)
	}
	return b.String()
}
