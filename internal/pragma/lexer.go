// Package pragma is the textual front-end: it parses the paper's literal
// directive syntax —
//
//	#pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)
//	#pragma comm_parameters sendwhen(rank%2==0) receivewhen(rank%2==1)
//	        count(size) max_comm_iter(n) place_sync(END_PARAM_REGION)
//
// — into directive specifications whose clause expressions are evaluated
// against a per-rank variable environment (rank, nprocs, and any
// application variables), and lowers them onto a core.Env. It is the
// compiler-front-end half of the paper's system: the listings in the paper
// parse verbatim (see the tests).
package pragma

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokSym // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenises a clause argument or a whole pragma line.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// twoCharOps are the multi-character operators, longest first.
var twoCharOps = []string{"==", "!=", "<=", ">=", "&&", "||"}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		case unicode.IsDigit(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokInt, l.src[start:l.pos], start})
		default:
			matched := false
			for _, op := range twoCharOps {
				if strings.HasPrefix(l.src[l.pos:], op) {
					l.toks = append(l.toks, token{tokSym, op, l.pos})
					l.pos += len(op)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			switch c {
			case '(', ')', ',', '+', '-', '*', '/', '%', '<', '>', '!', '&', '[', ']':
				l.toks = append(l.toks, token{tokSym, string(c), l.pos})
				l.pos++
			default:
				return nil, fmt.Errorf("pragma: unexpected character %q at %d in %q", c, l.pos, src)
			}
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", len(src)})
	return l.toks, nil
}
