package pragma_test

import (
	"strings"
	"testing"
	"testing/quick"

	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/pragma"
	"commintent/internal/shmem"
	"commintent/internal/spmd"
)

func TestExprEvaluation(t *testing.T) {
	vars := map[string]int{"rank": 5, "nprocs": 8, "n": 3}
	cases := []struct {
		src  string
		want int
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"rank-1", 4},
		{"(rank-1+nprocs)%nprocs", 4},
		{"(rank+1)%nprocs", 6},
		{"rank%2==0", 0},
		{"rank%2==1", 1},
		{"-n", -3},
		{"!0", 1},
		{"!7", 0},
		{"rank==5 && nprocs==8", 1},
		{"rank==4 || nprocs==8", 1},
		{"rank==4 && nprocs==8", 0},
		{"10/n", 3},
		{"rank<=5", 1},
		{"rank<5", 0},
		{"rank>=6", 0},
		{"rank!=5", 0},
		{"2*(rank-n)", 4},
	}
	for _, tc := range cases {
		e, err := pragma.ParseExpr(tc.src)
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		got, err := e.Eval(vars)
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%q = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	for _, src := range []string{"", "1+", "(1", "1 2", "foo(", "a @ b"} {
		if _, err := pragma.ParseExpr(src); err == nil {
			t.Errorf("%q parsed", src)
		}
	}
	e, err := pragma.ParseExpr("undefined_var+1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(map[string]int{}); err == nil {
		t.Error("undefined variable evaluated")
	}
	for _, src := range []string{"1/0", "1%0"} {
		e, err := pragma.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Eval(nil); err == nil {
			t.Errorf("%q evaluated", src)
		}
	}
}

// TestExprArithmeticProperty cross-checks the evaluator against Go.
func TestExprArithmeticProperty(t *testing.T) {
	e, err := pragma.ParseExpr("(a+b)*c - a%d")
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b, c int16, dRaw uint8) bool {
		d := int(dRaw)%7 + 1
		vars := map[string]int{"a": int(a), "b": int(b), "c": int(c), "d": d}
		got, err := e.Eval(vars)
		if err != nil {
			return false
		}
		want := (int(a)+int(b))*int(c) - int(a)%d
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseListing1 parses the paper's Listing 1 verbatim.
func TestParseListing1(t *testing.T) {
	s, err := pragma.Parse("#pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Params || s.Sender == nil || s.Receiver == nil || len(s.SBuf) != 1 || len(s.RBuf) != 1 {
		t.Errorf("spec = %+v", s)
	}
	if s.SBuf[0].Name != "buf1" || s.RBuf[0].Name != "buf2" {
		t.Errorf("buffers: %v %v", s.SBuf, s.RBuf)
	}
}

// TestParseListing2 parses Listing 2 verbatim.
func TestParseListing2(t *testing.T) {
	s, err := pragma.Parse(`#pragma comm_p2p sbuf(buf1) rbuf(buf2)
		sender(rank-1) receiver(rank+1)
		sendwhen(rank%2==0) receivewhen(rank%2==1)`)
	if err != nil {
		t.Fatal(err)
	}
	if s.SendWhen == nil || s.RecvWhen == nil {
		t.Fatalf("when clauses missing: %+v", s)
	}
	even, _ := pragma.EvalBool(s.SendWhen, map[string]int{"rank": 4})
	odd, _ := pragma.EvalBool(s.RecvWhen, map[string]int{"rank": 5})
	if !even || !odd {
		t.Error("when clause evaluation wrong")
	}
}

// TestParseListing3 parses Listing 3 verbatim, including the
// comm_parameters-only clauses and the &buf1[p] buffer references.
func TestParseListing3(t *testing.T) {
	params, err := pragma.Parse(`#pragma comm_parameters sender(rank-1)
		receiver(rank+1) sendwhen(rank%2==0)
		receivewhen(rank%2==1) count(size)
		max_comm_iter(n) place_sync(END_PARAM_REGION)`)
	if err != nil {
		t.Fatal(err)
	}
	if !params.Params || params.MaxCommIter == nil || params.PlaceSync != "END_PARAM_REGION" {
		t.Errorf("params spec: %+v", params)
	}
	p2p, err := pragma.Parse("#pragma comm_p2p sbuf(&buf1[p]) rbuf(&buf2[p])")
	if err != nil {
		t.Fatal(err)
	}
	if p2p.SBuf[0].Offset == nil || p2p.RBuf[0].Offset == nil {
		t.Errorf("offsets not parsed: %+v", p2p)
	}
}

// TestParseListing5 parses Listing 5's three directives, including the
// paper's literal "vsbuf" spelling.
func TestParseListing5(t *testing.T) {
	lines := []string{
		"#pragma comm_parameters sendwhen(rank==from_rank) receivewhen(rank==to_rank) sender(from_rank) receiver(to_rank)",
		"#pragma comm_p2p sbuf(scalaratomdata) rbuf(scalaratomdata) count(1)",
		"#pragma comm_p2p vsbuf(vr,rhotot) rbuf(vr,rhotot) count(size1)",
		"#pragma comm_p2p sbuf(ec,nc,lc,kc) rbuf(ec,nc,lc,kc) count(size2)",
	}
	for i, l := range lines {
		s, err := pragma.Parse(l)
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if (i == 0) != s.Params {
			t.Errorf("line %d Params=%v", i, s.Params)
		}
	}
	s, _ := pragma.Parse(lines[3])
	if len(s.SBuf) != 4 || s.SBuf[2].Name != "lc" {
		t.Errorf("buffer list: %v", s.SBuf)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"#pragma comm_nope sbuf(a) rbuf(a)",
		"#pragma comm_p2p bogus(a)",
		"#pragma comm_p2p sbuf(a",
		"#pragma comm_p2p sbuf(a) sbuf(b) rbuf(c)",
		"#pragma comm_p2p place_sync(END_PARAM_REGION) sbuf(a) rbuf(a)",
		"#pragma comm_p2p max_comm_iter(3) sbuf(a) rbuf(a)",
		"#pragma comm_p2p target(1SIDE) sbuf(a) rbuf(a)",
	}
	for _, l := range bad {
		if s, err := pragma.Parse(l); err == nil {
			// target keyword errors surface at lowering, not parse.
			if strings.Contains(l, "target(") {
				if _, oerr := s.Options(pragma.Env{}); oerr == nil {
					t.Errorf("%q lowered", l)
				}
				continue
			}
			t.Errorf("%q parsed", l)
		}
	}
}

func TestSpecRoundTripString(t *testing.T) {
	src := "#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank%2==0) receivewhen(rank%2==1) count(size) max_comm_iter(n) place_sync(END_PARAM_REGION)"
	s, err := pragma.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// The rendered form must re-parse to an equivalent spec.
	s2, err := pragma.Parse(s.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", s.String(), err)
	}
	if s2.String() != s.String() {
		t.Errorf("round trip: %q vs %q", s.String(), s2.String())
	}
}

// TestListing1RunsFromText executes the paper's Listing 1 parsed from its
// literal source text, on both targets.
func TestListing1RunsFromText(t *testing.T) {
	const n = 6
	ring := pragma.MustParse("#pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)")
	for _, target := range []core.Target{core.TargetMPI2Side, core.TargetSHMEM} {
		target := target
		t.Run(target.String(), func(t *testing.T) {
			spec := *ring
			switch target {
			case core.TargetSHMEM:
				spec.Target = "TARGET_COMM_SHMEM"
			default:
				spec.Target = "TARGET_COMM_MPI_2SIDE"
			}
			if err := spmd.Run(n, model.Uniform(10), func(rk *spmd.Rank) error {
				shm := shmem.New(rk)
				cenv, err := core.NewEnv(mpi.World(rk), shm)
				if err != nil {
					return err
				}
				defer cenv.Close()
				buf1 := shmem.MustAlloc[int64](shm, 2)
				buf2 := shmem.MustAlloc[int64](shm, 2)
				buf1.Local(shm)[0] = int64(rk.ID * 3)

				// prev = (rank-1+nprocs)%nprocs; next = (rank+1)%nprocs;
				env := pragma.Env{
					Vars: map[string]int{
						"rank":   rk.ID,
						"nprocs": n,
						"prev":   (rk.ID - 1 + n) % n,
						"next":   (rk.ID + 1) % n,
					},
					Bufs: map[string]any{"buf1": buf1, "buf2": buf2},
				}
				if err := spec.Exec(cenv, env); err != nil {
					return err
				}
				want := int64(((rk.ID - 1 + n) % n) * 3)
				if got := buf2.Local(shm)[0]; got != want {
					t.Errorf("rank %d got %d want %d", rk.ID, got, want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestListing3RunsFromText executes the paper's Listing 3 shape from text:
// a comm_parameters region containing a loop of comm_p2p with &buf[p]
// offsets.
func TestListing3RunsFromText(t *testing.T) {
	const n = 4
	const iters = 5
	params := pragma.MustParse(`#pragma comm_parameters sender(rank-1)
		receiver(rank+1) sendwhen(rank%2==0)
		receivewhen(rank%2==1) count(1)
		max_comm_iter(n) place_sync(END_PARAM_REGION)`)
	step := pragma.MustParse("#pragma comm_p2p sbuf(&buf1[p]) rbuf(&buf2[p])")
	if err := spmd.Run(n, model.Uniform(10), func(rk *spmd.Rank) error {
		shm := shmem.New(rk)
		cenv, err := core.NewEnv(mpi.World(rk), shm)
		if err != nil {
			return err
		}
		defer cenv.Close()
		buf1 := shmem.MustAlloc[float64](shm, iters)
		buf2 := shmem.MustAlloc[float64](shm, iters)
		src := buf1.Local(shm)
		for i := range src {
			src[i] = float64(rk.ID*100 + i)
		}
		env := pragma.Env{
			Vars: map[string]int{"rank": rk.ID, "nprocs": n, "n": iters},
			Bufs: map[string]any{"buf1": buf1, "buf2": buf2},
		}
		err = params.Region(cenv, env, func(r *core.Region) error {
			for p := 0; p < iters; p++ {
				env.Vars["p"] = p
				if err := step.ExecIn(r, env, nil); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if rk.ID%2 == 1 {
			got := buf2.Local(shm)
			for i := range got {
				if got[i] != float64((rk.ID-1)*100+i) {
					t.Errorf("rank %d buf2[%d] = %v", rk.ID, i, got[i])
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
