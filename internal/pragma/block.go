package pragma

import (
	"fmt"
	"strings"

	"commintent/internal/core"
)

// Block is a parsed multi-directive source block: one optional
// comm_parameters region wrapping a sequence of comm_p2p directives — the
// shape of the paper's Listing 5.
type Block struct {
	Params *Spec // nil for a bare sequence of comm_p2p directives
	P2P    []*Spec
}

// ParseBlock parses a source block of directive lines. Each directive
// starts at a line containing "#pragma" and continues over following lines
// until the next "#pragma" (clauses may wrap, as in the paper's listings).
// Braces and anything that is not part of a directive are ignored, so a
// listing can be pasted verbatim.
func ParseBlock(src string) (*Block, error) {
	var chunks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			chunks = append(chunks, cur.String())
			cur.Reset()
		}
	}
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if idx := strings.Index(trimmed, "#pragma"); idx >= 0 {
			flush()
			cur.WriteString(trimmed[idx:])
			cur.WriteByte(' ')
			continue
		}
		if cur.Len() > 0 {
			// Continuation of the current directive; strip block braces.
			trimmed = strings.Trim(trimmed, "{}")
			cur.WriteString(trimmed)
			cur.WriteByte(' ')
		}
	}
	flush()
	if len(chunks) == 0 {
		return nil, fmt.Errorf("pragma: no directives in block")
	}
	b := &Block{}
	for i, c := range chunks {
		s, err := Parse(c)
		if err != nil {
			return nil, fmt.Errorf("pragma: directive %d: %w", i, err)
		}
		if s.Params {
			if b.Params != nil {
				return nil, fmt.Errorf("pragma: block has more than one comm_parameters directive")
			}
			if len(b.P2P) > 0 {
				return nil, fmt.Errorf("pragma: comm_parameters must precede the comm_p2p directives")
			}
			b.Params = s
			continue
		}
		b.P2P = append(b.P2P, s)
	}
	if len(b.P2P) == 0 {
		return nil, fmt.Errorf("pragma: block has no comm_p2p directives")
	}
	return b, nil
}

// MustParseBlock is ParseBlock that panics, for literal listing constants.
func MustParseBlock(src string) *Block {
	b, err := ParseBlock(src)
	if err != nil {
		panic(err)
	}
	return b
}

// Exec runs the block: the comm_parameters region (if any) is opened with
// its clauses and every comm_p2p executes inside it in order, inheriting
// the region's assertions exactly as the paper specifies.
func (b *Block) Exec(cenv *core.Env, env Env) error {
	if b.Params == nil {
		for i, s := range b.P2P {
			if err := s.Exec(cenv, env); err != nil {
				return fmt.Errorf("pragma: comm_p2p %d: %w", i, err)
			}
		}
		return nil
	}
	return b.Params.Region(cenv, env, func(r *core.Region) error {
		for i, s := range b.P2P {
			if err := s.ExecIn(r, env, nil); err != nil {
				return fmt.Errorf("pragma: comm_p2p %d: %w", i, err)
			}
		}
		return nil
	})
}
