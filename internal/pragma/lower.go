package pragma

import (
	"fmt"
	"reflect"

	"commintent/internal/core"
	"commintent/internal/shmem"
)

// Env is the evaluation context for a directive: per-rank variables
// (rank, nprocs, loop variables, ...) and the buffers the clause names
// refer to.
type Env struct {
	Vars map[string]int
	Bufs map[string]any
}

// Options lowers the parsed spec to directive-layer clause options,
// evaluating every clause expression against the environment. It is called
// at directive-execution time, which is when the paper's generated code
// would evaluate the expressions too.
func (s *Spec) Options(env Env) ([]core.Option, error) {
	var opts []core.Option
	if s.Sender != nil {
		v, err := s.Sender.Eval(env.Vars)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.Sender(v))
	}
	if s.Receiver != nil {
		v, err := s.Receiver.Eval(env.Vars)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.Receiver(v))
	}
	if s.SendWhen != nil {
		b, err := EvalBool(s.SendWhen, env.Vars)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.SendWhen(b))
	}
	if s.RecvWhen != nil {
		b, err := EvalBool(s.RecvWhen, env.Vars)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.ReceiveWhen(b))
	}
	if s.Count != nil {
		v, err := s.Count.Eval(env.Vars)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.Count(v))
	}
	if len(s.SBuf) > 0 {
		bufs, err := resolveBufs(s.SBuf, env)
		if err != nil {
			return nil, fmt.Errorf("sbuf: %w", err)
		}
		opts = append(opts, core.SBuf(bufs...))
	}
	if len(s.RBuf) > 0 {
		bufs, err := resolveBufs(s.RBuf, env)
		if err != nil {
			return nil, fmt.Errorf("rbuf: %w", err)
		}
		opts = append(opts, core.RBuf(bufs...))
	}
	if s.Target != "" {
		t, err := targetKeyword(s.Target)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.WithTarget(t))
	}
	if s.MaxCommIter != nil {
		v, err := s.MaxCommIter.Eval(env.Vars)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.MaxCommIter(v))
	}
	if s.PlaceSync != "" {
		p, err := placeSyncKeyword(s.PlaceSync)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.PlaceSync(p))
	}
	return opts, nil
}

func resolveBufs(refs []BufRef, env Env) ([]any, error) {
	out := make([]any, len(refs))
	for i, r := range refs {
		buf, ok := env.Bufs[r.Name]
		if !ok {
			return nil, fmt.Errorf("unknown buffer %q", r.Name)
		}
		if r.Offset == nil {
			out[i] = buf
			continue
		}
		off, err := r.Offset.Eval(env.Vars)
		if err != nil {
			return nil, err
		}
		if off < 0 {
			return nil, fmt.Errorf("buffer %q offset %d", r.Name, off)
		}
		if sym, ok := buf.(shmem.AnySlice); ok {
			out[i] = core.At(sym, off)
			continue
		}
		rv := reflect.ValueOf(buf)
		if rv.Kind() != reflect.Slice {
			return nil, fmt.Errorf("buffer %q (%T) cannot take an offset", r.Name, buf)
		}
		if off > rv.Len() {
			return nil, fmt.Errorf("buffer %q offset %d out of %d", r.Name, off, rv.Len())
		}
		out[i] = rv.Slice(off, rv.Len()).Interface()
	}
	return out, nil
}

func targetKeyword(kw string) (core.Target, error) {
	switch kw {
	case "TARGET_COMM_MPI_2SIDE":
		return core.TargetMPI2Side, nil
	case "TARGET_COMM_MPI_1SIDE":
		return core.TargetMPI1Side, nil
	case "TARGET_COMM_SHMEM":
		return core.TargetSHMEM, nil
	case "TARGET_COMM_AUTO": // extension
		return core.TargetAuto, nil
	default:
		return 0, fmt.Errorf("pragma: unknown target keyword %q", kw)
	}
}

func placeSyncKeyword(kw string) (core.SyncPlacement, error) {
	switch kw {
	case "END_PARAM_REGION":
		return core.EndParamRegion, nil
	case "BEGIN_NEXT_PARAM_REGION":
		return core.BeginNextParamRegion, nil
	case "END_ADJ_PARAM_REGIONS":
		return core.EndAdjParamRegions, nil
	default:
		return 0, fmt.Errorf("pragma: unknown place_sync keyword %q", kw)
	}
}

// ExecP2P parses (if needed) and executes a standalone comm_p2p directive
// on the environment.
func ExecP2P(cenv *core.Env, line string, env Env) error {
	s, err := Parse(line)
	if err != nil {
		return err
	}
	return s.Exec(cenv, env)
}

// Exec executes a parsed comm_p2p spec standalone.
func (s *Spec) Exec(cenv *core.Env, env Env) error {
	if s.Params {
		return fmt.Errorf("pragma: Exec on a comm_parameters directive; use Region")
	}
	opts, err := s.Options(env)
	if err != nil {
		return err
	}
	return cenv.P2P(opts...)
}

// ExecIn executes a parsed comm_p2p spec inside an open region, with an
// optional overlapped body.
func (s *Spec) ExecIn(r *core.Region, env Env, body func() error) error {
	if s.Params {
		return fmt.Errorf("pragma: ExecIn on a comm_parameters directive")
	}
	opts, err := s.Options(env)
	if err != nil {
		return err
	}
	return r.P2POverlap(body, opts...)
}

// Region opens the comm_parameters region described by a parsed spec and
// runs body inside it.
func (s *Spec) Region(cenv *core.Env, env Env, body func(*core.Region) error) error {
	if !s.Params {
		return fmt.Errorf("pragma: Region on a comm_p2p directive; use Exec")
	}
	opts, err := s.Options(env)
	if err != nil {
		return err
	}
	return cenv.Parameters(body, opts...)
}
