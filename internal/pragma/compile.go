package pragma

import (
	"fmt"

	"commintent/internal/plan"
)

// CompileBlock lowers a parsed directive block to a static pattern and
// compiles it with the plan package's analyses — the full pipeline of the
// paper's system: source text -> parsed clauses -> static analysis ->
// reusable plan. Buffer names become the pattern's slots; clause
// expressions are evaluated per rank against vars supplemented with "rank"
// and "nprocs" at execution.
//
// Restriction: a static pattern binds one buffer per slot, so block
// buffers with per-instance offsets (&buf[p]) cannot be compiled — bind
// views per execution with the dynamic Block.Exec instead.
func CompileBlock(b *Block, vars map[string]int) (*plan.Plan, error) {
	toExpr := func(e Expr) plan.Expr {
		if e == nil {
			return nil
		}
		return func(rank, size int) int {
			v, err := evalWith(e, vars, rank, size)
			if err != nil {
				panic(err) // surfaced by Execute's caller as a rank panic
			}
			return v
		}
	}
	toCond := func(e Expr) plan.Cond {
		if e == nil {
			return nil
		}
		return func(rank, size int) bool {
			v, err := evalWith(e, vars, rank, size)
			if err != nil {
				panic(err)
			}
			return v != 0
		}
	}

	p := plan.Pattern{Name: "pragma-block"}
	if b.Params != nil {
		p.Sender = toExpr(b.Params.Sender)
		p.Receiver = toExpr(b.Params.Receiver)
		p.SendWhen = toCond(b.Params.SendWhen)
		p.RecvWhen = toCond(b.Params.RecvWhen)
		if b.Params.Target != "" {
			t, err := targetKeyword(b.Params.Target)
			if err != nil {
				return nil, err
			}
			p.Target = t
		}
		if b.Params.PlaceSync != "" {
			ps, err := placeSyncKeyword(b.Params.PlaceSync)
			if err != nil {
				return nil, err
			}
			p.PlaceSync = ps
		}
		if b.Params.MaxCommIter != nil {
			v, err := b.Params.MaxCommIter.Eval(vars)
			if err != nil {
				return nil, fmt.Errorf("pragma: max_comm_iter: %w", err)
			}
			p.MaxCommIter = v
		}
	}
	for i, s := range b.P2P {
		st := plan.Step{
			Name:     fmt.Sprintf("p2p-%d", i),
			Sender:   toExpr(s.Sender),
			Receiver: toExpr(s.Receiver),
			SendWhen: toCond(s.SendWhen),
			RecvWhen: toCond(s.RecvWhen),
		}
		if s.Count != nil {
			v, err := s.Count.Eval(vars)
			if err != nil {
				return nil, fmt.Errorf("pragma: step %d count: %w", i, err)
			}
			st.Count = v
		}
		for _, r := range s.SBuf {
			if r.Offset != nil {
				return nil, fmt.Errorf("pragma: step %d: offset buffer %s cannot be compiled statically", i, r)
			}
			st.SBuf = append(st.SBuf, plan.Slot(r.Name))
		}
		for _, r := range s.RBuf {
			if r.Offset != nil {
				return nil, fmt.Errorf("pragma: step %d: offset buffer %s cannot be compiled statically", i, r)
			}
			st.RBuf = append(st.RBuf, plan.Slot(r.Name))
		}
		p.Steps = append(p.Steps, st)
	}
	return plan.Compile(p)
}

// evalWith evaluates e against vars extended by the executing rank's
// identity, without mutating the caller's map.
func evalWith(e Expr, vars map[string]int, rank, size int) (int, error) {
	env := make(map[string]int, len(vars)+2)
	for k, v := range vars {
		env[k] = v
	}
	env["rank"] = rank
	env["nprocs"] = size
	return e.Eval(env)
}

// BindingFromBufs adapts a buffer map to a plan binding over the block's
// slot names.
func BindingFromBufs(bufs map[string]any) plan.Binding {
	out := make(plan.Binding, len(bufs))
	for k, v := range bufs {
		out[plan.Slot(k)] = v
	}
	return out
}
