package pragma

import (
	"fmt"
	"strconv"
)

// Expr is a parsed clause expression, evaluated per rank against a
// variable environment. Booleans are represented as 0/1, matching the
// C-flavoured source syntax.
type Expr interface {
	Eval(vars map[string]int) (int, error)
	String() string
}

// EvalBool evaluates an expression as a condition.
func EvalBool(e Expr, vars map[string]int) (bool, error) {
	v, err := e.Eval(vars)
	return v != 0, err
}

type intLit int

func (i intLit) Eval(map[string]int) (int, error) { return int(i), nil }
func (i intLit) String() string                   { return strconv.Itoa(int(i)) }

type varRef string

func (v varRef) Eval(vars map[string]int) (int, error) {
	if val, ok := vars[string(v)]; ok {
		return val, nil
	}
	return 0, fmt.Errorf("pragma: undefined variable %q", string(v))
}
func (v varRef) String() string { return string(v) }

type unary struct {
	op string
	x  Expr
}

func (u unary) Eval(vars map[string]int) (int, error) {
	x, err := u.x.Eval(vars)
	if err != nil {
		return 0, err
	}
	switch u.op {
	case "-":
		return -x, nil
	case "!":
		if x == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("pragma: unknown unary operator %q", u.op)
}
func (u unary) String() string { return u.op + u.x.String() }

type binary struct {
	op   string
	l, r Expr
}

func (b binary) Eval(vars map[string]int) (int, error) {
	l, err := b.l.Eval(vars)
	if err != nil {
		return 0, err
	}
	// Short-circuit the logical operators.
	switch b.op {
	case "&&":
		if l == 0 {
			return 0, nil
		}
		r, err := b.r.Eval(vars)
		if err != nil {
			return 0, err
		}
		return boolInt(r != 0), nil
	case "||":
		if l != 0 {
			return 1, nil
		}
		r, err := b.r.Eval(vars)
		if err != nil {
			return 0, err
		}
		return boolInt(r != 0), nil
	}
	r, err := b.r.Eval(vars)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("pragma: division by zero in %s", b)
		}
		return l / r, nil
	case "%":
		if r == 0 {
			return 0, fmt.Errorf("pragma: modulo by zero in %s", b)
		}
		return l % r, nil
	case "==":
		return boolInt(l == r), nil
	case "!=":
		return boolInt(l != r), nil
	case "<":
		return boolInt(l < r), nil
	case ">":
		return boolInt(l > r), nil
	case "<=":
		return boolInt(l <= r), nil
	case ">=":
		return boolInt(l >= r), nil
	}
	return 0, fmt.Errorf("pragma: unknown operator %q", b.op)
}
func (b binary) String() string { return "(" + b.l.String() + b.op + b.r.String() + ")" }

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// exprParser is a recursive-descent parser over a token stream with
// C-style precedence: || < && < comparisons < additive < multiplicative <
// unary < primary.
type exprParser struct {
	toks []token
	i    int
}

func (p *exprParser) peek() token { return p.toks[p.i] }
func (p *exprParser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *exprParser) accept(sym string) bool {
	if p.peek().kind == tokSym && p.peek().text == sym {
		p.i++
		return true
	}
	return false
}

// ParseExpr parses a complete clause expression.
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &exprParser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("pragma: trailing input %q in expression %q", p.peek().text, src)
	}
	return e, nil
}

func (p *exprParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binary{"||", l, r}
	}
	return l, nil
}

func (p *exprParser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = binary{"&&", l, r}
	}
	return l, nil
}

func (p *exprParser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.accept(op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return binary{op, l, r}, nil
		}
	}
	return l, nil
}

func (p *exprParser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = binary{"+", l, r}
		case p.accept("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = binary{"-", l, r}
		default:
			return l, nil
		}
	}
}

func (p *exprParser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binary{"*", l, r}
		case p.accept("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binary{"/", l, r}
		case p.accept("%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binary{"%", l, r}
		default:
			return l, nil
		}
	}
}

func (p *exprParser) parseUnary() (Expr, error) {
	if p.accept("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unary{"-", x}, nil
	}
	if p.accept("!") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unary{"!", x}, nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		v, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, fmt.Errorf("pragma: bad integer %q", t.text)
		}
		return intLit(v), nil
	case tokIdent:
		return varRef(t.text), nil
	case tokSym:
		if t.text == "(" {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.accept(")") {
				return nil, fmt.Errorf("pragma: missing ) at %d", p.peek().pos)
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("pragma: unexpected token %q at %d", t.text, t.pos)
}
