package pragma_test

import (
	"strings"
	"testing"

	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/pragma"
	"commintent/internal/shmem"
	"commintent/internal/spmd"
)

// listing5 is the paper's Listing 5 pasted verbatim (line numbers and C
// braces removed; the clause text is untouched).
const listing5 = `
#pragma comm_parameters sendwhen(rank==from_rank)
    receivewhen(rank==to_rank)
    sender(from_rank) receiver(to_rank)
{
  #pragma comm_p2p sbuf(scalaratomdata)
      rbuf(scalaratomdata) count(1)
  { }

  #pragma comm_p2p vsbuf(vr,rhotot)
      rbuf(vr,rhotot) count(size1)
  { }

  #pragma comm_p2p sbuf(ec,nc,lc,kc)
      rbuf(ec,nc,lc,kc) count(size2)
  { }
}
`

func TestParseBlockListing5(t *testing.T) {
	b, err := pragma.ParseBlock(listing5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Params == nil || len(b.P2P) != 3 {
		t.Fatalf("block: params=%v p2p=%d", b.Params != nil, len(b.P2P))
	}
	if len(b.P2P[1].SBuf) != 2 || len(b.P2P[2].SBuf) != 4 {
		t.Errorf("buffer lists: %v / %v", b.P2P[1].SBuf, b.P2P[2].SBuf)
	}
}

func TestParseBlockErrors(t *testing.T) {
	bad := []string{
		"",
		"no directives here",
		"#pragma comm_parameters sender(a) receiver(b)", // no p2p
		`#pragma comm_p2p sbuf(a) rbuf(a)
		 #pragma comm_parameters sender(x) receiver(y)
		 #pragma comm_p2p sbuf(b) rbuf(b)`, // params after p2p
	}
	for _, src := range bad {
		if _, err := pragma.ParseBlock(src); err == nil {
			t.Errorf("block %q parsed", src)
		}
	}
}

// TestListing5BlockExecutes runs the paper's Listing 5 text end to end:
// the scalar composite moves via a derived datatype, the matrix pairs via
// buffer lists, all under one consolidated synchronisation.
func TestListing5BlockExecutes(t *testing.T) {
	type scalarAtomData struct {
		LocalID int32
		Xstart  float64
		Evec    [3]float64
	}
	const size1, size2 = 12, 8
	block := pragma.MustParseBlock(listing5)

	if err := spmd.Run(2, model.Uniform(10), func(rk *spmd.Rank) error {
		shm := shmem.New(rk)
		cenv, err := core.NewEnv(mpi.World(rk), shm)
		if err != nil {
			return err
		}
		defer cenv.Close()

		scal := &scalarAtomData{}
		vr := make([]float64, size1)
		rhotot := make([]float64, size1)
		ec := make([]float64, size2)
		nc := make([]int32, size2)
		lc := make([]int32, size2)
		kc := make([]int32, size2)
		if rk.ID == 0 {
			scal.LocalID = 5
			scal.Xstart = -11.13
			scal.Evec = [3]float64{0, 0, 1}
			for i := range vr {
				vr[i] = float64(i)
				rhotot[i] = float64(2 * i)
			}
			for i := range ec {
				ec[i] = float64(3 * i)
				nc[i], lc[i], kc[i] = int32(i), int32(i+1), int32(i+2)
			}
		}

		env := pragma.Env{
			Vars: map[string]int{
				"rank": rk.ID, "from_rank": 0, "to_rank": 1,
				"size1": size1, "size2": size2,
			},
			Bufs: map[string]any{
				"scalaratomdata": scal,
				"vr":             vr, "rhotot": rhotot,
				"ec": ec, "nc": nc, "lc": lc, "kc": kc,
			},
		}
		if err := block.Exec(cenv, env); err != nil {
			return err
		}
		if rk.ID == 1 {
			if scal.LocalID != 5 || scal.Xstart != -11.13 || scal.Evec[2] != 1 {
				t.Errorf("scalars: %+v", scal)
			}
			if vr[7] != 7 || rhotot[7] != 14 || ec[5] != 15 || nc[5] != 5 || lc[5] != 6 || kc[5] != 7 {
				t.Errorf("matrices corrupt: vr[7]=%v rho[7]=%v ec[5]=%v", vr[7], rhotot[7], ec[5])
			}
			// One consolidated waitall over all 7 receives, plus the
			// derived datatype created once.
			syncs, dtypes := 0, 0
			for _, d := range cenv.Decisions() {
				if d.Kind == "sync" && strings.Contains(d.Detail, "MPI_Waitall over 7") {
					syncs++
				}
				if d.Kind == "datatype" {
					dtypes++
				}
			}
			if syncs != 1 || dtypes != 1 {
				t.Errorf("syncs=%d dtypes=%d decisions=%v", syncs, dtypes, cenv.Decisions())
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCompileBlockPipeline runs the full pipeline: paper text -> parsed
// block -> statically compiled plan -> repeated execution with bindings.
func TestCompileBlockPipeline(t *testing.T) {
	src := `
	#pragma comm_parameters sender(from) receiver(to)
	    sendwhen(rank==from) receivewhen(rank==to)
	    place_sync(END_PARAM_REGION)
	#pragma comm_p2p sbuf(a) rbuf(a) count(4)
	#pragma comm_p2p sbuf(b) rbuf(b) count(2)
	`
	block, err := pragma.ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := pragma.CompileBlock(block, map[string]int{"from": 0, "to": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Slots()) != 2 {
		t.Fatalf("slots = %v", pl.Slots())
	}
	dump := pl.String()
	if !strings.Contains(dump, "p2p-0") || !strings.Contains(dump, "region-end consolidated sync") {
		t.Errorf("plan dump:\n%s", dump)
	}
	if err := spmd.Run(2, model.Uniform(10), func(rk *spmd.Rank) error {
		shm := shmem.New(rk)
		cenv, err := core.NewEnv(mpi.World(rk), shm)
		if err != nil {
			return err
		}
		defer cenv.Close()
		a := make([]float64, 4)
		b := make([]int32, 2)
		for iter := 0; iter < 3; iter++ {
			if rk.ID == 0 {
				for i := range a {
					a[i] = float64(iter*10 + i)
				}
				b[0], b[1] = int32(iter), int32(-iter)
			}
			if err := pl.Execute(cenv, pragma.BindingFromBufs(map[string]any{"a": a, "b": b})); err != nil {
				return err
			}
			if rk.ID == 1 {
				if a[3] != float64(iter*10+3) || b[1] != int32(-iter) {
					t.Errorf("iter %d: a=%v b=%v", iter, a, b)
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCompileBlockRejectsOffsets: per-instance offsets need the dynamic
// path.
func TestCompileBlockRejectsOffsets(t *testing.T) {
	block, err := pragma.ParseBlock(`
	#pragma comm_parameters sender(0) receiver(1)
	#pragma comm_p2p sbuf(&a[p]) rbuf(&a[p])`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pragma.CompileBlock(block, nil); err == nil {
		t.Error("offset buffers compiled statically")
	}
}
