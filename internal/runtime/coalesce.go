package runtime

// Coalescing policy: which comm_p2p transfers may be folded into one wire
// message, and how large a batch may grow. The numbers are deliberately
// conservative — coalescing exists to amortise per-message overhead on
// *small* transfers (the Fig. 4 workload moves 3 float64s = 24 B per atom),
// and a batch must stay strictly eager so the combined message never
// rendezvous-blocks before the receiver has drained its side.

const (
	// MaxBatchParts caps how many member transfers one batch carries; it
	// also fixes the offset-table header size on the wire.
	MaxBatchParts = 16

	// MaxBatchBytes caps a batch's total payload.
	MaxBatchBytes = 2048

	// MaxCoalescePartBytes is the largest single transfer worth folding
	// in; anything bigger amortises its own per-message overhead.
	MaxCoalescePartBytes = 256
)

// BatchPayloadCap bounds a batch's payload given the profile's eager
// threshold and the wire header size: the whole wire message (header +
// payload) must stay ≤ the eager threshold so a batch never becomes a
// rendezvous send. Returns ≤ 0 when the profile's threshold is too small
// to coalesce at all, which disables coalescing for that run.
func BatchPayloadCap(eagerThreshold, headerBytes int) int {
	cap := MaxBatchBytes
	if m := eagerThreshold - headerBytes; m < cap {
		cap = m
	}
	return cap
}

// PartEligible reports whether a single transfer of the given wire size
// may join a batch under the given payload cap.
func PartEligible(bytes, payloadCap int) bool {
	return bytes > 0 && bytes <= MaxCoalescePartBytes && bytes <= payloadCap
}
