package runtime

import (
	"testing"

	"commintent/internal/coll"
)

func TestParseConfig(t *testing.T) {
	cases := []struct {
		in   string
		want Config
	}{
		{"", Config{}},
		{"0", Config{}},
		{"off", Config{}},
		{"no", Config{}},
		{"1", Config{Retune: true, Coalesce: true}},
		{"on", Config{Retune: true, Coalesce: true}},
		{"TRUE", Config{Retune: true, Coalesce: true}},
		{"full", Config{Retune: true, Coalesce: true, AutoSync: true}},
		{"all", Config{Retune: true, Coalesce: true, AutoSync: true}},
		{"retune", Config{Retune: true}},
		{"coalesce", Config{Coalesce: true}},
		{"autosync", Config{AutoSync: true}},
		{"retune, coalesce", Config{Retune: true, Coalesce: true}},
		{"coalesce,sync", Config{Coalesce: true, AutoSync: true}},
		{"bogus", Config{}},
		{"bogus,retune", Config{Retune: true}},
	}
	for _, c := range cases {
		if got := parseConfig(c.in); got != c.want {
			t.Errorf("parseConfig(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestConfigString(t *testing.T) {
	if s := (Config{}).String(); s != "off" {
		t.Errorf("zero config String() = %q, want off", s)
	}
	if s := (Config{Retune: true, Coalesce: true, AutoSync: true}).String(); s != "retune,coalesce,autosync" {
		t.Errorf("full config String() = %q", s)
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports Enabled")
	}
	if !(Config{Coalesce: true}).Enabled() {
		t.Error("coalesce-only config reports disabled")
	}
}

func TestOverride(t *testing.T) {
	base := Active()
	restore := Override(Config{Coalesce: true})
	if got := Active(); got != (Config{Coalesce: true}) {
		t.Errorf("Active under Override = %+v", got)
	}
	restore()
	if got := Active(); got != base {
		t.Errorf("Active after restore = %+v, want %+v", got, base)
	}
}

// TestTraceCanonical: Snapshot and Fingerprint are insensitive to the
// real-time interleaving of Record calls — the replay-determinism contract.
func TestTraceCanonical(t *testing.T) {
	ds := []Decision{
		{Rank: 1, V: 200, Domain: "retune", Key: "a", From: "x", To: "y"},
		{Rank: 0, V: 100, Domain: "coalesce", Key: "b", From: "4 msgs", To: "1 batch"},
		{Rank: 2, V: 100, Domain: "autosync", Key: "c"},
		{Rank: 0, V: 100, Domain: "retune", Key: "b"},
	}
	var fwd, rev Trace
	for _, d := range ds {
		fwd.Record(d)
	}
	for i := len(ds) - 1; i >= 0; i-- {
		rev.Record(ds[i])
	}
	if fwd.Fingerprint() != rev.Fingerprint() {
		t.Error("fingerprint depends on record order")
	}
	snap := fwd.Snapshot()
	for i := 1; i < len(snap); i++ {
		a, b := snap[i-1], snap[i]
		if a.V > b.V || (a.V == b.V && a.Rank > b.Rank) {
			t.Errorf("snapshot not canonically ordered at %d: %+v then %+v", i, a, b)
		}
	}
	if fwd.Len() != len(ds) {
		t.Errorf("Len = %d, want %d", fwd.Len(), len(ds))
	}
}

func TestTraceNilAndCap(t *testing.T) {
	var nilT *Trace
	nilT.Record(Decision{}) // must not panic
	if nilT.Len() != 0 || nilT.Dropped() != 0 || nilT.Snapshot() != nil {
		t.Error("nil trace accessors not zero")
	}
	var tr Trace
	for i := 0; i < MaxTraceDecisions+10; i++ {
		tr.Record(Decision{Rank: i})
	}
	if tr.Len() != MaxTraceDecisions {
		t.Errorf("Len = %d, want cap %d", tr.Len(), MaxTraceDecisions)
	}
	if tr.Dropped() != 10 {
		t.Errorf("Dropped = %d, want 10", tr.Dropped())
	}
}

// TestTunerHysteresis: the tuner starts at the static choice, ignores one or
// two observations recommending a different algorithm, and switches exactly
// at the hysteresis threshold, recording the decision.
func TestTunerHysteresis(t *testing.T) {
	var tr Trace
	tu := NewCollTuner(&tr, "world")
	const n, bytes = 8, 64 << 10 // large payload: static table picks Ring for allreduce
	static := coll.Choose(coll.Allreduce, n, bytes)

	// A strongly latency-bound observation drives ChooseTuned toward the
	// small-message (tree) regime: wire cost is a tiny share of duration.
	obs := CollObs{Duration: 1000000, Wire: 10, Bytes: bytes, Rank: 0}
	want := coll.ChooseTuned(coll.Allreduce, n, bytes, Feedback(obs))
	if want == static {
		t.Skip("profile regime does not separate static vs tuned choice for this slot")
	}

	for i := 1; i < TunerHysteresis; i++ {
		algo, switched := tu.Choose(coll.Allreduce, n, bytes, coll.Topo{}, obs)
		if switched || algo != static {
			t.Fatalf("obs %d: algo=%v switched=%v, want pinned %v", i, algo, switched, static)
		}
	}
	algo, switched := tu.Choose(coll.Allreduce, n, bytes, coll.Topo{}, obs)
	if !switched || algo != want {
		t.Fatalf("at threshold: algo=%v switched=%v, want switch to %v", algo, switched, want)
	}
	if tu.Switches() != 1 {
		t.Errorf("Switches = %d, want 1", tu.Switches())
	}
	if tr.Len() != 1 {
		t.Errorf("trace recorded %d decisions, want 1", tr.Len())
	}
	// Stable afterwards: the same observation keeps the new pin.
	if _, sw := tu.Choose(coll.Allreduce, n, bytes, coll.Topo{}, obs); sw {
		t.Error("tuner switched again on an observation matching its pin")
	}
}

// Feedback converts an observation the way CollTuner.Choose does for its
// first observation (EWMA not yet warmed).
func Feedback(o CollObs) coll.Feedback {
	return coll.Feedback{
		LatencyShare:   latencyShare(o.Duration, o.Wire),
		NSPerByte:      float64(o.Duration) / float64(max(o.Bytes, 1)),
		QueueHighWater: o.QueueHighWater,
	}
}

func TestLatencyShare(t *testing.T) {
	if s := latencyShare(0, 100); s != -1 {
		t.Errorf("no observation: %v, want -1", s)
	}
	if s := latencyShare(100, 100); s != 0 {
		t.Errorf("pure wire: %v, want 0", s)
	}
	if s := latencyShare(200, 100); s != 0.5 {
		t.Errorf("half wire: %v, want 0.5", s)
	}
	if s := latencyShare(100, 200); s != 0 {
		t.Errorf("wire above duration clamps: %v, want 0", s)
	}
}

func TestBatchPayloadCap(t *testing.T) {
	if c := BatchPayloadCap(1<<30, 68); c != MaxBatchBytes {
		t.Errorf("huge eager: cap %d, want %d", c, MaxBatchBytes)
	}
	if c := BatchPayloadCap(100, 68); c != 32 {
		t.Errorf("tight eager: cap %d, want 32", c)
	}
	if c := BatchPayloadCap(68, 68); c > 0 {
		t.Errorf("eager == header: cap %d, want <= 0", c)
	}
	if !PartEligible(24, 1024) {
		t.Error("24B part ineligible")
	}
	if PartEligible(0, 1024) || PartEligible(MaxCoalescePartBytes+1, 1024) || PartEligible(64, 32) {
		t.Error("ineligible part accepted")
	}
}
