// Package runtime is the managed adaptive layer: the paper's thesis is that
// declared communication intent lets the *system*, not the programmer, pick
// the best realization, and MDMP takes this furthest by letting a managed
// runtime schedule communication from observed behavior. This package closes
// that loop over the pieces the repo already holds — telemetry observes
// per-pattern bytes, latencies and queue depths; internal/coll picks
// collective schedules from static size tables; internal/core lowers
// directives — by providing:
//
//   - the opt-in configuration (env knob + per-region managed_runtime
//     clause) that gates every adaptive behavior, so all pinned goldens are
//     bit-identical with it off;
//   - the deterministic decision trace: every adaptive choice (a collective
//     algorithm switch, a coalesced batch close, an automatic sync
//     deferral) is recorded with its virtual timestamp, and same-seed runs
//     produce identical traces because every input the decisions consume is
//     itself virtual-time deterministic;
//   - the online collective tuner (tuner.go) and the small-message
//     coalescing policy (coalesce.go).
package runtime

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"commintent/internal/model"
)

// EnvVar is the environment knob that enables the managed runtime.
//
//	""/"0"/"off"            disabled (the default; all goldens bit-identical)
//	"1"/"on"/"true"         online retuning + small-message coalescing
//	"full"                  retuning + coalescing + automatic sync placement
//	"retune,coalesce,..."   a comma list selecting individual behaviors
//
// Automatic sync placement is deliberately excluded from "1": deferring a
// region's completion past its end changes the directive contract exactly
// the way an explicit place_sync clause does, so it needs the stronger
// opt-in ("full" or the autosync token), while retuning and coalescing are
// semantically transparent — data is fully delivered at region end.
const EnvVar = "COMMINTENT_MANAGED_RUNTIME"

// Config selects which adaptive behaviors run.
type Config struct {
	// Retune re-invokes the collective algorithm selection mid-run from
	// live virtual-time observations (internal/mpi's schedule owner).
	Retune bool
	// Coalesce batches adjacent small comm_p2p transfers to the same
	// destination inside a comm_parameters region into one wire message.
	Coalesce bool
	// AutoSync defers a region's consolidated synchronisation the way an
	// explicit place_sync(END_ADJ_PARAM_REGIONS) does, whenever the region
	// carries no explicit placement; the dependency ledger still forces
	// completion before any dependent directive.
	AutoSync bool
}

// Enabled reports whether any adaptive behavior is selected.
func (c Config) Enabled() bool { return c.Retune || c.Coalesce || c.AutoSync }

func (c Config) String() string {
	if !c.Enabled() {
		return "off"
	}
	var parts []string
	if c.Retune {
		parts = append(parts, "retune")
	}
	if c.Coalesce {
		parts = append(parts, "coalesce")
	}
	if c.AutoSync {
		parts = append(parts, "autosync")
	}
	return strings.Join(parts, ",")
}

// Parse maps an EnvVar-style value ("off", "1", "full", or a comma list of
// retune,coalesce,autosync) to a Config, for tools that take the same knob
// as a flag.
func Parse(v string) Config { return parseConfig(v) }

// parseConfig maps one EnvVar value to a Config. Unknown tokens are
// ignored rather than fatal: an experiment knob must never brick a run.
func parseConfig(v string) Config {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "", "0", "off", "false", "no":
		return Config{}
	case "1", "on", "true", "yes":
		return Config{Retune: true, Coalesce: true}
	case "full", "all":
		return Config{Retune: true, Coalesce: true, AutoSync: true}
	}
	var c Config
	for _, tok := range strings.Split(v, ",") {
		switch strings.ToLower(strings.TrimSpace(tok)) {
		case "retune":
			c.Retune = true
		case "coalesce":
			c.Coalesce = true
		case "autosync", "sync":
			c.AutoSync = true
		}
	}
	return c
}

var (
	envOnce sync.Once
	envCfg  Config

	// override holds a test/tool-installed config taking precedence over
	// the environment; nil means no override. The pointer swap keeps
	// Active() a single atomic load on the hot path and lets parallel
	// tests pin the runtime without racing on os.Setenv.
	override atomic.Pointer[Config]
)

// FromEnv returns the configuration selected by EnvVar, read once.
func FromEnv() Config {
	envOnce.Do(func() { envCfg = parseConfig(os.Getenv(EnvVar)) })
	return envCfg
}

// Override pins the active configuration, returning a restore func; the
// usual form is defer Override(cfg)(). It exists so tests can exercise the
// managed runtime without mutating the process environment (the coll.Force
// pattern). Overrides do not nest: restore reinstates whatever was active
// when this Override was installed.
func Override(cfg Config) (restore func()) {
	old := override.Swap(&cfg)
	return func() { override.Store(old) }
}

// Active reports the configuration in force: the innermost Override if one
// is installed, else the environment's.
func Active() Config {
	if p := override.Load(); p != nil {
		return *p
	}
	return FromEnv()
}

// Decision is one recorded adaptive choice. Every field that feeds a
// Decision is derived from virtual-time observables, so the multiset of
// decisions a run produces is a pure function of (program, profile, seed).
type Decision struct {
	Rank   int        `json:"rank"`   // world rank that made the choice
	V      model.Time `json:"v"`      // virtual time of the choice
	Domain string     `json:"domain"` // "retune" | "coalesce" | "autosync"
	Key    string     `json:"key"`    // what was decided about (comm/collective/peer/region)
	From   string     `json:"from"`   // previous realization
	To     string     `json:"to"`     // chosen realization
	Reason string     `json:"reason"` // the observation that drove it
}

func (d Decision) String() string {
	return fmt.Sprintf("v=%d rank=%d %s %s: %s -> %s (%s)",
		int64(d.V), d.Rank, d.Domain, d.Key, d.From, d.To, d.Reason)
}

// MaxTraceDecisions caps the trace so adaptive steady-state loops cannot
// grow it without bound; the early decisions are the informative ones.
const MaxTraceDecisions = 8192

// Trace accumulates decisions from all ranks of a world. Individual ranks
// append concurrently (real-time interleaving is scheduler-dependent), so
// Snapshot canonicalises the order by virtual time before anything is
// compared or hashed — that is what makes same-seed traces bit-identical.
type Trace struct {
	mu      sync.Mutex
	ds      []Decision
	dropped int
}

// Record appends one decision (nil-safe; drops past the cap).
func (t *Trace) Record(d Decision) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ds) < MaxTraceDecisions {
		t.ds = append(t.ds, d)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Len reports the number of recorded decisions.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ds)
}

// Dropped reports decisions lost to the cap.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the decisions in canonical order: sorted by virtual
// time, then rank, then content. Two same-seed runs produce the same
// multiset of decisions, so their canonical orders — and fingerprints —
// are identical regardless of goroutine scheduling.
func (t *Trace) Snapshot() []Decision {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Decision, len(t.ds))
	copy(out, t.ds)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.V != b.V {
			return a.V < b.V
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Reason < b.Reason
	})
	return out
}

// Fingerprint hashes the canonical trace; equal fingerprints across
// same-seed runs are the replay-determinism contract the tests pin.
func (t *Trace) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, d := range t.Snapshot() {
		fmt.Fprintln(h, d.String())
	}
	return h.Sum64()
}

// String renders the canonical trace, one decision per line.
func (t *Trace) String() string {
	var b strings.Builder
	for _, d := range t.Snapshot() {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
