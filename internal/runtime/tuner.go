package runtime

import (
	"fmt"
	"math/bits"

	"commintent/internal/coll"
	"commintent/internal/model"
)

// TunerHysteresis is how many consecutive identical recommendations a
// candidate algorithm must accumulate before the tuner actually switches.
// One noisy observation (a collective that straddled a barrier stall, say)
// must not flap the schedule; three in a row is a trend.
const TunerHysteresis = 3

// ewmaAlpha weights the newest observation in the running ns/byte average.
const ewmaAlpha = 0.25

// CollObs is one virtual-time observation of a completed collective: the
// schedule owner computes it from the participants' entry and exit clocks,
// so it is bit-identical across same-seed runs.
type CollObs struct {
	// Duration is the collective's virtual span: max exit − min entry.
	Duration model.Time
	// Wire is the profile's pure-bandwidth cost for the payload — the
	// part of Duration no algorithm choice can remove.
	Wire model.Time
	// Bytes is the per-rank payload size.
	Bytes int
	// QueueHighWater is the owner's deterministic outstanding-request
	// high-watermark at observation time.
	QueueHighWater int
	// Rank and V locate the decision for the trace.
	Rank int
	V    model.Time
}

// collKey identifies one tuned decision slot. Bytes are bucketed by log2 so
// minor payload jitter shares a slot instead of fragmenting the cache, and
// the placement's topology class keeps hierarchical and flat schedules from
// polluting each other's EWMAs — the same (kind, comm, size) measures a
// different schedule on a different placement.
type collKey struct {
	kind  coll.Kind
	n     int
	class int
	topo  int
}

type collState struct {
	algo      coll.Algo // current pinned choice
	havePin   bool
	nsPerByte float64 // EWMA of observed virtual ns/byte
	obs       int
	candidate coll.Algo // pending recommendation accumulating streak
	streak    int
	switches  int
}

// CollTuner is the per-communicator online decision cache: each collective
// invocation feeds its observation in and gets the algorithm to use back.
// It is owned by the communicator's schedule owner (exactly one goroutine
// between the entry and exit barriers), so it needs no locking, and all of
// its inputs are virtual-time deterministic, so its decision sequence
// replays bit-identically for a given seed.
type CollTuner struct {
	trace *Trace
	comm  string
	slots map[collKey]*collState
}

// NewCollTuner returns a tuner recording its switches into trace (nil ok)
// under the given communicator id.
func NewCollTuner(trace *Trace, comm string) *CollTuner {
	return &CollTuner{trace: trace, comm: comm, slots: make(map[collKey]*collState)}
}

func sizeClass(bytes int) int { return bits.Len(uint(bytes)) }

// Choose records the observation and returns the algorithm for this slot,
// switching only after TunerHysteresis consecutive identical
// recommendations differ from the pinned choice. tp is the communicator's
// placement (zero when the profile has no topology); it both keys the slot
// and steers the candidate tables. switched reports whether this call
// performed a switch.
func (t *CollTuner) Choose(k coll.Kind, n, bytes int, tp coll.Topo, obs CollObs) (algo coll.Algo, switched bool) {
	key := collKey{kind: k, n: n, class: sizeClass(bytes), topo: tp.Class()}
	st := t.slots[key]
	if st == nil {
		st = &collState{}
		t.slots[key] = st
	}
	if !st.havePin {
		// First sight of this slot: pin the static table's choice so the
		// tuner starts exactly where the untuned system would.
		st.algo = coll.ChooseTopo(k, n, bytes, tp)
		st.havePin = true
	}

	if obs.Duration > 0 {
		nspb := float64(obs.Duration) / float64(max(bytes, 1))
		if st.obs == 0 {
			st.nsPerByte = nspb
		} else {
			st.nsPerByte = ewmaAlpha*nspb + (1-ewmaAlpha)*st.nsPerByte
		}
		st.obs++
	}

	fb := coll.Feedback{
		LatencyShare:   latencyShare(obs.Duration, obs.Wire),
		NSPerByte:      st.nsPerByte,
		QueueHighWater: obs.QueueHighWater,
	}
	cand := coll.ChooseTunedTopo(k, n, bytes, tp, fb)
	if cand == st.algo {
		st.streak = 0
		st.candidate = cand
		return st.algo, false
	}
	if st.candidate != cand {
		st.candidate = cand
		st.streak = 1
	} else {
		st.streak++
	}
	if st.streak < TunerHysteresis {
		return st.algo, false
	}
	from := st.algo
	st.algo = cand
	st.streak = 0
	st.switches++
	t.trace.Record(Decision{
		Rank:   obs.Rank,
		V:      obs.V,
		Domain: "retune",
		Key:    fmt.Sprintf("%s/%s n=%d b=2^%d", t.comm, k, n, key.class),
		From:   from.String(),
		To:     cand.String(),
		Reason: fmt.Sprintf("lat-share=%.2f ns/B=%.1f qhw=%d after %d obs", fb.LatencyShare, st.nsPerByte, obs.QueueHighWater, st.obs),
	})
	return st.algo, true
}

// Switches reports the total algorithm switches performed across slots.
func (t *CollTuner) Switches() int {
	n := 0
	for _, st := range t.slots {
		n += st.switches
	}
	return n
}

// latencyShare is the fraction of the observed duration the pure-bandwidth
// wire cost does not explain — high means latency/overhead-bound (tree
// regime), low means bandwidth-bound (ring/pipeline regime).
func latencyShare(dur, wire model.Time) float64 {
	if dur <= 0 {
		return -1 // no observation yet
	}
	s := 1 - float64(wire)/float64(dur)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}
