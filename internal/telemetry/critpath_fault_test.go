package telemetry_test

import (
	"encoding/binary"
	"hash/fnv"
	"strings"
	"testing"
	"time"

	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/patterns"
	"commintent/internal/shmem"
	"commintent/internal/simnet"
	"commintent/internal/spmd"
	"commintent/internal/telemetry"
	"commintent/internal/trace"
)

// faultyRun executes a ring exchange at the given drop rate and returns the
// raw event trace. The retry protocol absorbs the losses, so the run
// completes — but the trace now contains ghost deliveries, cancelled
// receives and re-sent rounds, exactly what the critical-path analyser must
// not trip over.
func faultyRun(t *testing.T, n int, seed uint64, drop float64, iters int) *trace.Collector {
	t.Helper()
	w, err := spmd.NewWorld(n, model.GeminiLike())
	if err != nil {
		t.Fatal(err)
	}
	if drop > 0 {
		cfg := simnet.FaultConfig{Seed: seed, Drop: drop}
		cfg.TagSpan, cfg.UserSpan = mpi.P2PFaultScope()
		w.Fabric().SetFaults(cfg)
	}
	col := trace.Attach(w.Fabric())
	err = w.Run(func(rk *spmd.Rank) error {
		c := mpi.World(rk)
		c.SetWatchdog(10 * time.Second)
		shm := shmem.New(rk)
		env, err := core.NewEnv(c, shm)
		if err != nil {
			return err
		}
		defer env.Close()
		return patterns.Run("ring", rk, env, shm, core.TargetMPI2Side, 4, iters)
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// finishHash folds a report's makespan and per-rank finish times into one
// comparable word.
func finishHash(rep *telemetry.CritReport) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(rep.Makespan))
	h.Write(b[:])
	for _, v := range rep.PerRankFinish {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	return h.Sum64()
}

// checkStructure asserts the invariants a path through any trace — healthy
// or faulty — must satisfy: a connected chain whose edges are used once,
// whose events are counted once, and which ends at the makespan.
func checkStructure(t *testing.T, rep *telemetry.CritReport) {
	t.Helper()
	if len(rep.Chain) == 0 {
		t.Fatal("empty chain")
	}
	if rep.ChainEdges != len(rep.Chain)-1 {
		t.Errorf("ChainEdges = %d, want %d (segments-1)", rep.ChainEdges, len(rep.Chain)-1)
	}
	sum := 0
	seen := map[[2]int64]bool{}
	for i, s := range rep.Chain {
		if s.Events <= 0 {
			t.Errorf("segment %d traverses %d events", i, s.Events)
		}
		sum += s.Events
		if s.Start > s.End {
			t.Errorf("segment %d runs backward: %v > %v", i, s.Start, s.End)
		}
		if i == 0 {
			if s.FromRank != -1 {
				t.Errorf("first segment arrives from rank %d, want -1", s.FromRank)
			}
			continue
		}
		// Each message edge is a distinct (sender, send-time) pair: a
		// retried round or a ghost delivery being double-counted would
		// surface as a repeated edge.
		edge := [2]int64{int64(s.FromRank), int64(s.FromV)}
		if seen[edge] {
			t.Errorf("message edge %v used twice", edge)
		}
		seen[edge] = true
		if s.FromRank != rep.Chain[i-1].Rank {
			t.Errorf("segment %d arrives from rank %d but previous segment ran on rank %d",
				i, s.FromRank, rep.Chain[i-1].Rank)
		}
		if s.FromV > s.End {
			t.Errorf("segment %d: dependency arrives at %v after the segment ends at %v", i, s.FromV, s.End)
		}
	}
	if sum != rep.ChainEvents {
		t.Errorf("ChainEvents = %d, segments sum to %d", rep.ChainEvents, sum)
	}
	if rep.ChainEvents > rep.Events {
		t.Errorf("chain traverses %d events out of %d total", rep.ChainEvents, rep.Events)
	}
	if last := rep.Chain[len(rep.Chain)-1]; last.End != rep.Makespan {
		t.Errorf("chain ends at %v, makespan is %v", last.End, rep.Makespan)
	}
	var maxFinish model.Time
	for _, v := range rep.PerRankFinish {
		if v > maxFinish {
			maxFinish = v
		}
	}
	if maxFinish != rep.Makespan {
		t.Errorf("makespan %v != max per-rank finish %v", rep.Makespan, maxFinish)
	}
}

// TestCriticalPathOnFaultyRun: the analyser must stay sound on a trace full
// of retried comm_p2p rounds and ghost deliveries, and same-seed faulty
// runs must analyse bit-identically (the seeded-fault golden).
func TestCriticalPathOnFaultyRun(t *testing.T) {
	const n, iters = 8, 2
	const seed, drop = 3, 0.05

	healthy := telemetry.CriticalPath(faultyRun(t, n, 0, 0, iters).Events(), n)
	checkStructure(t, healthy)

	faulty := telemetry.CriticalPath(faultyRun(t, n, seed, drop, iters).Events(), n)
	checkStructure(t, faulty)

	// Recovery costs virtual time: the faulty makespan can only grow.
	if faulty.Makespan < healthy.Makespan {
		t.Errorf("faulty makespan %v below healthy %v", faulty.Makespan, healthy.Makespan)
	}

	// Same seed, same analysis — bit-identical makespan, per-rank finish
	// times, and chain shape.
	again := telemetry.CriticalPath(faultyRun(t, n, seed, drop, iters).Events(), n)
	if finishHash(faulty) != finishHash(again) {
		t.Fatalf("same-seed runs analyse differently: %x vs %x", finishHash(faulty), finishHash(again))
	}
	if faulty.ChainEdges != again.ChainEdges || faulty.ChainEvents != again.ChainEvents {
		t.Fatalf("same-seed chain diverged: %d/%d vs %d/%d edges/events",
			faulty.ChainEdges, faulty.ChainEvents, again.ChainEdges, again.ChainEvents)
	}
}

// TestCritPathRegionBreakdown: a labelled comm_parameters region attributes
// its traffic, and the report's per-region table reflects it.
func TestCritPathRegionBreakdown(t *testing.T) {
	const n = 2
	w, err := spmd.NewWorld(n, model.Uniform(100))
	if err != nil {
		t.Fatal(err)
	}
	tele := telemetry.New(n, 0)
	w.SetTelemetry(tele)
	col := trace.Attach(w.Fabric())
	err = w.Run(func(rk *spmd.Rank) error {
		shm := shmem.New(rk)
		env, err := core.NewEnv(mpi.World(rk), shm)
		if err != nil {
			return err
		}
		defer env.Close()
		src, dst := []float64{float64(rk.ID)}, []float64{-1}
		return env.Parameters(func(r *core.Region) error {
			return r.P2P(
				core.Sender(1-rk.ID), core.Receiver(1-rk.ID),
				core.SBuf(src), core.RBuf(dst),
				core.WithTarget(core.TargetMPI2Side),
			)
		}, core.Label("exchange"))
	})
	if err != nil {
		t.Fatal(err)
	}
	rid := w.Fabric().InternRegion("exchange")
	rep := telemetry.CriticalPath(col.Events(), n)
	if len(rep.Regions) == 0 {
		t.Fatal("attributed trace produced no per-region breakdown")
	}
	var got *telemetry.RegionStat
	for i := range rep.Regions {
		if rep.Regions[i].Region == rid {
			got = &rep.Regions[i]
		}
	}
	if got == nil {
		t.Fatalf("region %d (exchange) missing from %+v", rid, rep.Regions)
	}
	if got.Events == 0 || got.Bytes == 0 {
		t.Errorf("exchange region stats empty: %+v", got)
	}
	out := rep.StringWithLabels(w.Fabric().RegionLabel)
	if !strings.Contains(out, "exchange") {
		t.Errorf("rendered report does not name the region:\n%s", out)
	}

	// The attribution also reaches the metric registry: the per-region
	// wait histogram and the region-duration histogram both carry the
	// label.
	var sb strings.Builder
	if err := tele.Registry().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	prom := sb.String()
	for _, series := range []string{
		`mpi_wait_virtual_ns_by_region_count{rank="0",region="exchange"}`,
		`core_region_virtual_ns_count{rank="0",region="exchange"}`,
	} {
		if !strings.Contains(prom, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	// Spans under the region carry its id.
	found := false
	for r := 0; r < n && !found; r++ {
		for _, s := range tele.Tracer().RankSpans(r) {
			if s.Region == rid {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no span attributed to the labelled region")
	}
}
