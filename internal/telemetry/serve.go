package telemetry

// The live introspection plane: a zero-dependency net/http server over a
// running world. Every handler reads the same nil-safe structures the
// substrates update — the registry, the span tracer, the flight recorder and
// the endpoints' matching queues — so serving costs the world nothing beyond
// what observation already cost, and a nil Telemetry or Fabric degrades to
// empty (but well-formed) responses rather than errors.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"commintent/internal/simnet"
)

// Server is a running introspection endpoint; Close shuts it down.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server on addr (":0" picks a free port; see Addr)
// exposing the world's observability surfaces:
//
//	/metrics        Prometheus text exposition of the registry
//	/snapshot.json  the registry's JSON snapshot
//	/ranks          per-rank live status: last observed virtual time, clock
//	                skew, queue depths, in-flight ops, current region
//	/postmortem     JSON array of retained post-mortem dumps
//
// t and f may each be nil (disabled telemetry, no fabric); the handlers
// answer with empty documents. The server runs until Close.
func Serve(addr string, t *Telemetry, f *simnet.Fabric) (*Server, error) {
	if addr == "" {
		addr = ":0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: serve: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = t.Registry().WriteProm(w)
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := t.Registry().SnapshotJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(data)
	})
	mux.HandleFunc("/ranks", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rankStatuses(f))
	})
	mux.HandleFunc("/postmortem", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		pms := []*simnet.Postmortem{}
		if f != nil {
			pms = f.Postmortems()
		}
		_ = json.NewEncoder(w).Encode(pms)
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr reports the server's listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// RankStatus is one rank's live introspection record, as served by /ranks.
// LastV comes from the flight recorder (the rank's own virtual clock is
// goroutine-private and cannot be read safely across goroutines); SkewNS is
// the gap to the most advanced rank's LastV — on a recorder-less fabric both
// read 0.
type RankStatus struct {
	Rank           int    `json:"rank"`
	LastV          int64  `json:"last_v_ns"`
	SkewNS         int64  `json:"clock_skew_ns"`
	EventsRecorded int64  `json:"events_recorded"`
	PostedRecvs    int    `json:"posted_recvs"`
	UnexpectedMsgs int    `json:"unexpected_msgs"`
	UnexpectedHWM  int    `json:"unexpected_hwm"`
	Region         string `json:"region,omitempty"`
}

// rankStatuses assembles the /ranks payload; exported via the endpoint only.
func rankStatuses(f *simnet.Fabric) []RankStatus {
	if f == nil {
		return []RankStatus{}
	}
	rec := f.Recorder()
	out := make([]RankStatus, f.Size())
	var maxV int64
	for r := range out {
		ep := f.Endpoint(r)
		lastV := int64(rec.LastV(r))
		if lastV > maxV {
			maxV = lastV
		}
		out[r] = RankStatus{
			Rank:           r,
			LastV:          lastV,
			EventsRecorded: rec.Total(r),
			PostedRecvs:    ep.PendingPosted(),
			UnexpectedMsgs: ep.PendingUnexpected(),
			UnexpectedHWM:  ep.UnexpectedHighWatermark(),
			Region:         f.RegionLabel(ep.RegionID()),
		}
	}
	for r := range out {
		out[r].SkewNS = maxV - out[r].LastV
	}
	return out
}
