package telemetry

import (
	"strings"
	"testing"

	"commintent/internal/simnet"
)

func TestCriticalPathEmpty(t *testing.T) {
	rep := CriticalPath(nil, 4)
	if rep.ChainEdges != 0 || rep.ChainEvents != 0 || rep.Makespan != 0 {
		t.Fatalf("empty trace produced a chain: %+v", rep)
	}
	if rep.Imbalance != 1 {
		t.Fatalf("empty imbalance = %v", rep.Imbalance)
	}
	if s := rep.String(); !strings.Contains(s, "critical path: 0 message edge(s)") {
		t.Errorf("report: %s", s)
	}
}

func TestCriticalPathCrossRankEdge(t *testing.T) {
	// Rank 0 sends at V=10; rank 1 posted early (V=5) and completes the
	// receive at V=20 after idling 15. The chain must cross the message
	// edge back to rank 0.
	events := []simnet.Event{
		{Rank: 1, Kind: simnet.EvRecvPost, Peer: 0, Tag: 7, V: 5},
		{Rank: 0, Kind: simnet.EvSend, Peer: 1, Tag: 7, Bytes: 64, V: 10},
		{Rank: 1, Kind: simnet.EvRecvComplete, Peer: 0, Tag: 7, Bytes: 64, V: 20, Idle: 15},
	}
	rep := CriticalPath(events, 2)
	if rep.Makespan != 20 {
		t.Fatalf("makespan = %v", rep.Makespan)
	}
	if rep.ChainEdges != 1 {
		t.Fatalf("chain edges = %d, want 1\n%s", rep.ChainEdges, rep)
	}
	if len(rep.Chain) != 2 {
		t.Fatalf("chain segments = %d", len(rep.Chain))
	}
	if rep.Chain[0].Rank != 0 || rep.Chain[1].Rank != 1 {
		t.Fatalf("segment ranks: %+v", rep.Chain)
	}
	if rep.Chain[1].FromRank != 0 || rep.Chain[1].FromV != 10 {
		t.Fatalf("edge provenance: %+v", rep.Chain[1])
	}
	if rep.PerRankIdle[1] != 15 || rep.PerRankIdle[0] != 0 {
		t.Fatalf("idle: %v", rep.PerRankIdle)
	}
	if rep.PerRankFinish[0] != 10 || rep.PerRankFinish[1] != 20 {
		t.Fatalf("finish: %v", rep.PerRankFinish)
	}
	// max(20) / mean(15) = 4/3.
	if rep.Imbalance < 1.33 || rep.Imbalance > 1.34 {
		t.Fatalf("imbalance = %v", rep.Imbalance)
	}
	s := rep.String()
	for _, want := range []string{"1 message edge(s)", "per-rank idle", "load imbalance"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestCriticalPathPrefersLaterPredecessor(t *testing.T) {
	// The receiver's own previous operation (V=30) finishes after the
	// matched send (V=10): the chain must stay on rank 1 instead of
	// crossing.
	events := []simnet.Event{
		{Rank: 0, Kind: simnet.EvSend, Peer: 1, Tag: 0, V: 10},
		{Rank: 1, Kind: simnet.EvBarrier, Peer: -1, V: 30},
		{Rank: 1, Kind: simnet.EvRecvComplete, Peer: 0, Tag: 0, V: 35},
	}
	rep := CriticalPath(events, 2)
	if rep.ChainEdges != 0 {
		t.Fatalf("chain crossed: %+v", rep.Chain)
	}
	if len(rep.Chain) != 1 || rep.Chain[0].Rank != 1 || rep.Chain[0].Events != 2 {
		t.Fatalf("chain: %+v", rep.Chain)
	}
}

func TestCriticalPathFIFOMatching(t *testing.T) {
	// Two sends on the same (src,dst,tag) stream: the second recv-complete
	// must match the second send, not the first.
	events := []simnet.Event{
		{Rank: 0, Kind: simnet.EvSend, Peer: 1, Tag: 3, V: 10},
		{Rank: 0, Kind: simnet.EvSend, Peer: 1, Tag: 3, V: 40},
		{Rank: 1, Kind: simnet.EvRecvComplete, Peer: 0, Tag: 3, V: 15},
		{Rank: 1, Kind: simnet.EvRecvComplete, Peer: 0, Tag: 3, V: 45},
	}
	rep := CriticalPath(events, 2)
	if rep.ChainEdges != 1 {
		t.Fatalf("chain edges = %d\n%s", rep.ChainEdges, rep)
	}
	// The final segment's inbound edge carries the second send's time.
	last := rep.Chain[len(rep.Chain)-1]
	if last.FromV != 40 {
		t.Fatalf("matched send V = %v, want 40 (FIFO)", last.FromV)
	}
}

func TestCriticalPathIgnoresOutOfRangeRanks(t *testing.T) {
	events := []simnet.Event{
		{Rank: 0, Kind: simnet.EvSend, Peer: 1, V: 10},
		{Rank: 9, Kind: simnet.EvSend, Peer: 0, V: 99}, // out of range, dropped
	}
	rep := CriticalPath(events, 2)
	if rep.Makespan != 10 {
		t.Fatalf("makespan = %v (out-of-range rank leaked in)", rep.Makespan)
	}
}
