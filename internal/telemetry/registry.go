// Package telemetry is the zero-dependency observability layer of the
// simulated machine: a thread-safe metrics registry (counters, gauges and
// virtual-time histograms with fixed log2 buckets) with Prometheus-style
// text exposition and a JSON snapshot, a span tracer over virtual time
// with per-rank ring buffers and Chrome trace_event export, and a
// critical-path analyser over the fabric's event stream.
//
// Instrumentation is designed to be free when disabled: every handle type
// (*Counter, *Gauge, *Histogram, Tracer spans) is safe to use with a nil
// receiver, so a substrate holding nil handles pays only a nil check per
// instrumented operation. The directive layer, the MPI-like and SHMEM-like
// substrates and the fabric all carry such handles; a world without an
// attached Telemetry runs with all of them nil.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"commintent/internal/model"
)

// Label is one metric dimension, e.g. {Key: "rank", Value: "3"}.
type Label struct {
	Key, Value string
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Rank builds the conventional per-rank label.
func Rank(r int) Label { return Label{Key: "rank", Value: fmt.Sprint(r)} }

// Counter is a monotonically increasing metric. All methods are safe on a
// nil receiver (they no-op), which is the disabled-telemetry fast path.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// AddTime increases the counter by a virtual-time span in nanoseconds.
func (c *Counter) AddTime(d model.Time) { c.Add(int64(d)) }

// Value reports the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, with a max-tracking helper
// for high-watermarks. Nil receivers no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d (negative d decreases it).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// SetMax raises the gauge to v if v is larger — a high-watermark update.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reports the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of log2 buckets a Histogram carries: bucket i
// counts observations v with 2^(i-1) <= v < 2^i virtual nanoseconds
// (bucket 0 counts v <= 0 and v < 1). 2^42 ns is ~73 virtual minutes,
// far beyond any simulated operation.
const histBuckets = 43

// Histogram accumulates virtual-time observations into fixed log2 buckets.
// Nil receivers no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one virtual-time span.
func (h *Histogram) Observe(v model.Time) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(int64(v))
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
		if i >= histBuckets {
			i = histBuckets - 1
		}
	}
	h.buckets[i].Add(1)
}

// Count reports the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observations in virtual nanoseconds (0 on nil).
func (h *Histogram) Sum() model.Time {
	if h == nil {
		return 0
	}
	return model.Time(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) of the observations from
// the log2 buckets, interpolating linearly inside the bucket holding the
// target rank. Accuracy is bounded by the bucket width — at worst a factor
// of 2 — which is plenty for the p50/p95/p99 summary tables. Returns 0 on a
// nil or empty histogram.
func (h *Histogram) Quantile(q float64) model.Time {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo := 0.0
			if i > 0 {
				lo = float64(int64(1) << uint(i-1))
			}
			hi := float64(int64(1) << uint(i))
			frac := (target - cum) / c
			return model.Time(lo + frac*(hi-lo))
		}
		cum += c
	}
	return model.Time(int64(1) << uint(histBuckets-1))
}

// Registry is a thread-safe collection of named metrics. The zero source
// of truth for metric identity is the full series key: name plus sorted
// labels. Get-or-create accessors return shared handles, so two call
// sites asking for the same series update the same value. A nil *Registry
// hands out nil handles, which no-op.
type Registry struct {
	mu           sync.Mutex
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	hists        map[string]*Histogram
	gaugeFuncs   map[string]func() int64
	counterFuncs map[string]func() int64
	types        map[string]string // base metric name -> prom type
	conflicts    []string          // names registered under more than one type
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     make(map[string]*Counter),
		gauges:       make(map[string]*Gauge),
		hists:        make(map[string]*Histogram),
		gaugeFuncs:   make(map[string]func() int64),
		counterFuncs: make(map[string]func() int64),
		types:        make(map[string]string),
	}
}

// setType records name's Prometheus type and tracks collisions: the same
// base name registered by two packages under different kinds would make the
// exposition lie about half its series. TypeConflicts surfaces them and a
// verify-gate test asserts there are none. Caller holds mu.
func (r *Registry) setType(name, kind string) {
	if prev, ok := r.types[name]; ok && prev != kind {
		r.conflicts = append(r.conflicts,
			fmt.Sprintf("%s registered as both %s and %s", name, prev, kind))
	}
	r.types[name] = kind
}

// TypeConflicts reports metric names registered under more than one metric
// type since the registry was created.
func (r *Registry) TypeConflicts() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.conflicts))
	copy(out, r.conflicts)
	return out
}

// seriesKey renders name{k="v",...} with labels sorted by key.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// baseName extracts the metric name from a series key.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// Counter returns (creating on first use) the counter for name+labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
		r.setType(name, "counter")
	}
	return c
}

// Gauge returns (creating on first use) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
		r.setType(name, "gauge")
	}
	return g
}

// Histogram returns (creating on first use) the histogram for name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		h = &Histogram{}
		r.hists[key] = h
		r.setType(name, "histogram")
	}
	return h
}

// FindHistogram returns the histogram for name+labels if that series has
// been registered, else nil (whose accessors no-op/return zero). Unlike
// Histogram it never creates the series — report builders use it to probe
// without polluting the exposition.
func (r *Registry) FindHistogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[key]
}

// GaugeFunc registers a gauge whose value is pulled from f at exposition
// time — the scrape-time collection style for values that live elsewhere
// (e.g. the fabric's unexpected-queue high-watermark).
func (r *Registry) GaugeFunc(name string, f func() int64, labels ...Label) {
	if r == nil {
		return
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[key] = f
	r.setType(name, "gauge")
}

// CounterFunc registers a monotone counter whose value is pulled from f at
// exposition time, for totals that already live elsewhere (e.g. the span
// tracer's per-rank dropped count).
func (r *Registry) CounterFunc(name string, f func() int64, labels ...Label) {
	if r == nil {
		return
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFuncs[key] = f
	r.setType(name, "counter")
}

// CounterValue reports the value of the named counter series (0 if the
// series does not exist). Handy in tests and report builders.
func (r *Registry) CounterValue(name string, labels ...Label) int64 {
	if r == nil {
		return 0
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	c := r.counters[key]
	r.mu.Unlock()
	return c.Value()
}

// snapshotRow is one exported series.
type snapshotRow struct {
	key  string
	kind string
	v    int64
	h    *Histogram
}

// rows collects every series, sorted by key, with gauge funcs evaluated.
func (r *Registry) rows() []snapshotRow {
	r.mu.Lock()
	out := make([]snapshotRow, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.gaugeFuncs))
	for k, c := range r.counters {
		out = append(out, snapshotRow{key: k, kind: "counter", v: c.Value()})
	}
	for k, g := range r.gauges {
		out = append(out, snapshotRow{key: k, kind: "gauge", v: g.Value()})
	}
	for k, h := range r.hists {
		out = append(out, snapshotRow{key: k, kind: "histogram", h: h})
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, f := range r.gaugeFuncs {
		funcs[k] = f
	}
	cfuncs := make(map[string]func() int64, len(r.counterFuncs))
	for k, f := range r.counterFuncs {
		cfuncs[k] = f
	}
	r.mu.Unlock()
	// Evaluate pull series outside the registry lock: they may read other
	// locked structures (fabric endpoints, the span tracer).
	for k, f := range funcs {
		out = append(out, snapshotRow{key: k, kind: "gauge", v: f()})
	}
	for k, f := range cfuncs {
		out = append(out, snapshotRow{key: k, kind: "counter", v: f()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// WriteProm writes the registry in the Prometheus text exposition format.
// Series are sorted, so output is deterministic for a quiesced world.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	rows := r.rows()
	r.mu.Lock()
	types := make(map[string]string, len(r.types))
	for k, v := range r.types {
		types[k] = v
	}
	r.mu.Unlock()
	seenType := make(map[string]bool)
	for _, row := range rows {
		base := baseName(row.key)
		if !seenType[base] {
			seenType[base] = true
			if t := types[base]; t != "" {
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, t); err != nil {
					return err
				}
			}
		}
		if row.h != nil {
			if err := writePromHistogram(w, row.key, row.h); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", row.key, row.v); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits cumulative le buckets plus _sum and _count for
// one histogram series.
func writePromHistogram(w io.Writer, key string, h *Histogram) error {
	name := baseName(key)
	var inner string
	if i := strings.IndexByte(key, '{'); i >= 0 {
		inner = key[i+1 : len(key)-1]
	}
	series := func(suffix, extra string) string {
		labels := inner
		if extra != "" {
			if labels != "" {
				labels += ","
			}
			labels += extra
		}
		if labels == "" {
			return name + suffix
		}
		return name + suffix + "{" + labels + "}"
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		// Bucket i holds values < 2^i ns; the final bucket is +Inf.
		le := fmt.Sprintf(`le="%d"`, int64(1)<<uint(i))
		if i == histBuckets-1 {
			le = `le="+Inf"`
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", series("_bucket", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", series("_sum", ""), int64(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", series("_count", ""), h.Count())
	return err
}

// histSnapshot is a histogram's JSON form.
type histSnapshot struct {
	Count   int64   `json:"count"`
	SumNS   int64   `json:"sum_ns"`
	Buckets []int64 `json:"log2_buckets,omitempty"` // non-cumulative, trailing zeros trimmed
}

// SnapshotJSON renders every series as a JSON object keyed by series name.
// Scalars (counters, gauges, gauge funcs) map to numbers; histograms map
// to {count, sum_ns, log2_buckets}.
func (r *Registry) SnapshotJSON() ([]byte, error) {
	if r == nil {
		return []byte("{}"), nil
	}
	out := make(map[string]any)
	for _, row := range r.rows() {
		if row.h != nil {
			hs := histSnapshot{Count: row.h.Count(), SumNS: int64(row.h.Sum())}
			last := -1
			raw := make([]int64, histBuckets)
			for i := 0; i < histBuckets; i++ {
				raw[i] = row.h.buckets[i].Load()
				if raw[i] != 0 {
					last = i
				}
			}
			if last >= 0 {
				hs.Buckets = raw[:last+1]
			}
			out[row.key] = hs
			continue
		}
		out[row.key] = row.v
	}
	return json.MarshalIndent(out, "", "  ")
}
