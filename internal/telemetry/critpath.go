package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"commintent/internal/model"
	"commintent/internal/simnet"
)

// PathSegment is one same-rank stretch of the critical path: the rank
// executed Events operations from Start to End before (walking backward)
// the chain crossed to another rank via a message edge.
type PathSegment struct {
	Rank     int
	Start    model.Time // V of the earliest event of the stretch
	End      model.Time // V of the latest event of the stretch
	Events   int        // fabric events traversed on this rank
	FromRank int        // rank the chain arrived from (-1 for the first segment)
	FromV    model.Time // V of the send that carried the dependency in
}

// CritReport is the critical-path analysis of one run's event trace: the
// longest dependency chain across recv-completion edges, per-rank idle
// (wait) time, and the load-imbalance ratio — the numbers a scaling table
// is built from.
type CritReport struct {
	Ranks    int
	Events   int
	Makespan model.Time // latest event time observed

	// Chain is the critical path, earliest segment first. ChainEdges is
	// the number of cross-rank message edges on it (the "length" of the
	// dependency chain); ChainEvents the total events traversed.
	Chain       []PathSegment
	ChainEdges  int
	ChainEvents int

	PerRankFinish []model.Time // last event time per rank
	PerRankIdle   []model.Time // summed blocked time per rank (Event.Idle)

	// Imbalance is max(finish) / mean(finish): 1.0 is perfectly balanced.
	Imbalance float64

	// Regions breaks the trace down by the directive region that issued
	// each event (Event.Region), sorted by region ID. Populated only when
	// the trace carries attribution (some event has a nonzero region);
	// region 0 then aggregates the unattributed remainder.
	Regions []RegionStat
}

// RegionStat aggregates the events attributed to one directive region — the
// per-pattern observation record an online autotuner consumes.
type RegionStat struct {
	Region int
	Events int
	Bytes  int64      // payload bytes of the region's sends, puts and gets
	Idle   model.Time // summed blocked time of the region's waits/syncs/barriers
	OnPath int        // critical-path chain events attributed to the region
}

// String renders the report for terminal output.
func (r *CritReport) String() string { return r.StringWithLabels(nil) }

// StringWithLabels renders the report, resolving region IDs through resolve
// (e.g. simnet.Fabric.RegionLabel); nil prints bare IDs.
func (r *CritReport) StringWithLabels(resolve func(int) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %d message edge(s) over %d event(s), makespan %v\n",
		r.ChainEdges, r.ChainEvents, r.Makespan)
	for i, s := range r.Chain {
		via := "start"
		if s.FromRank >= 0 {
			via = fmt.Sprintf("<- msg from rank %d @%v", s.FromRank, s.FromV)
		}
		fmt.Fprintf(&b, "  seg %2d: rank %3d  [%v .. %v]  %d event(s)  %s\n",
			i, s.Rank, s.Start, s.End, s.Events, via)
	}
	fmt.Fprintf(&b, "per-rank idle (wait) time:\n")
	for rk := 0; rk < r.Ranks; rk++ {
		var idle, fin model.Time
		if rk < len(r.PerRankIdle) {
			idle = r.PerRankIdle[rk]
		}
		if rk < len(r.PerRankFinish) {
			fin = r.PerRankFinish[rk]
		}
		pct := 0.0
		if fin > 0 {
			pct = 100 * float64(idle) / float64(fin)
		}
		fmt.Fprintf(&b, "  rank %3d: idle %12v of %12v (%.1f%%)\n", rk, idle, fin, pct)
	}
	fmt.Fprintf(&b, "load imbalance (max/mean finish): %.3f\n", r.Imbalance)
	if len(r.Regions) > 0 {
		b.WriteString("per-region breakdown:\n")
		for _, rs := range r.Regions {
			name := ""
			if resolve != nil {
				name = resolve(rs.Region)
			}
			if name == "" {
				if rs.Region == 0 {
					name = "(unattributed)"
				} else {
					name = fmt.Sprintf("region#%d", rs.Region)
				}
			}
			fmt.Fprintf(&b, "  %-24s %6d event(s)  %10d B  idle %12v  on-path %d\n",
				name, rs.Events, rs.Bytes, rs.Idle, rs.OnPath)
		}
	}
	return b.String()
}

// pairKey identifies a FIFO send->recv matching stream.
type pairKey struct {
	src, dst, tag int
}

// CriticalPath analyses a run's fabric events. It matches each
// recv-complete to the earliest unconsumed send of the same (source,
// destination, tag) stream — the fabric delivers and matches FIFO per
// pair, so this reconstructs the true dependency in the common case —
// and walks the resulting DAG backward from the latest event, at each
// step following the predecessor (same-rank program order, or the
// matched send) that completed last. Per-rank idle time is the sum of
// the blocked time the substrates record on their wait/sync/barrier
// events.
func CriticalPath(events []simnet.Event, n int) *CritReport {
	rep := &CritReport{
		Ranks:         n,
		Events:        len(events),
		PerRankFinish: make([]model.Time, n),
		PerRankIdle:   make([]model.Time, n),
	}
	if len(events) == 0 || n <= 0 {
		rep.Imbalance = 1
		return rep
	}

	// Per-rank event sequences in emission order. Each rank's clock is
	// monotone, so per-rank order is virtual-time order; the global slice
	// interleaves ranks arbitrarily.
	perRank := make([][]int, n)
	regStats := make(map[int]*RegionStat)
	attributed := false
	regOf := func(id int) *RegionStat {
		rs := regStats[id]
		if rs == nil {
			rs = &RegionStat{Region: id}
			regStats[id] = rs
		}
		return rs
	}
	for i, e := range events {
		if e.Rank < 0 || e.Rank >= n {
			continue
		}
		perRank[e.Rank] = append(perRank[e.Rank], i)
		if e.V > rep.PerRankFinish[e.Rank] {
			rep.PerRankFinish[e.Rank] = e.V
		}
		rep.PerRankIdle[e.Rank] += e.Idle
		if e.V > rep.Makespan {
			rep.Makespan = e.V
		}
		rs := regOf(e.Region)
		rs.Events++
		rs.Idle += e.Idle
		switch e.Kind {
		case simnet.EvSend, simnet.EvPut, simnet.EvGet:
			rs.Bytes += int64(e.Bytes)
		}
		if e.Region != 0 {
			attributed = true
		}
	}

	// FIFO send matching: sends enqueue per (src,dst,tag) in program
	// order; recv-completes consume in program order.
	sendQ := make(map[pairKey][]int)
	for r := 0; r < n; r++ {
		for _, i := range perRank[r] {
			e := events[i]
			if e.Kind == simnet.EvSend && e.Peer >= 0 {
				k := pairKey{src: r, dst: e.Peer, tag: e.Tag}
				sendQ[k] = append(sendQ[k], i)
			}
		}
	}
	matchedSend := make(map[int]int) // recv-complete event index -> send event index
	for r := 0; r < n; r++ {
		for _, i := range perRank[r] {
			e := events[i]
			if e.Kind == simnet.EvRecvComplete && e.Peer >= 0 {
				k := pairKey{src: e.Peer, dst: r, tag: e.Tag}
				if q := sendQ[k]; len(q) > 0 {
					matchedSend[i] = q[0]
					sendQ[k] = q[1:]
				}
			}
		}
	}

	// posInRank[i] is event i's position within its rank's sequence.
	posInRank := make(map[int]int, len(events))
	for r := 0; r < n; r++ {
		for p, i := range perRank[r] {
			posInRank[i] = p
		}
	}

	// Backtrack from the globally latest event.
	cur := -1
	for i, e := range events {
		if e.Rank < 0 || e.Rank >= n {
			continue
		}
		if cur < 0 || e.V > events[cur].V {
			cur = i
		}
	}

	type step struct {
		idx   int
		cross bool // reached (backward) via a message edge
	}
	var chain []step
	for cur >= 0 {
		e := events[cur]
		prev := -1
		if p := posInRank[cur]; p > 0 {
			prev = perRank[e.Rank][p-1]
		}
		send, hasSend := matchedSend[cur]
		// Prefer the predecessor that finished last: it bounds when this
		// event could complete. On ties prefer the message edge — the
		// cross-rank dependency is the structural one.
		next, cross := -1, false
		if hasSend && (prev < 0 || events[send].V >= events[prev].V) {
			next, cross = send, true
		} else if prev >= 0 {
			next, cross = prev, false
		}
		chain = append(chain, step{idx: cur, cross: cross})
		if next < 0 {
			break
		}
		cur = next
		if len(chain) > len(events) {
			break // defensive: cannot happen on a well-formed trace
		}
	}

	// chain is latest-first; fold into earliest-first same-rank segments.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	rep.ChainEvents = len(chain)
	for i := 0; i < len(chain); {
		e := events[chain[i].idx]
		seg := PathSegment{Rank: e.Rank, Start: e.V, End: e.V, FromRank: -1}
		if i > 0 {
			// chain[i].cross was recorded on the *later* event of the
			// backward edge; after reversal the flag that connects
			// segment boundaries sits on the first event of the next
			// segment, which is chain[i] looking backward to chain[i-1].
			from := events[chain[i-1].idx]
			seg.FromRank = from.Rank
			seg.FromV = from.V
		}
		j := i
		for j < len(chain) && events[chain[j].idx].Rank == e.Rank {
			seg.End = events[chain[j].idx].V
			seg.Events++
			j++
		}
		rep.Chain = append(rep.Chain, seg)
		i = j
	}
	rep.ChainEdges = len(rep.Chain) - 1
	if rep.ChainEdges < 0 {
		rep.ChainEdges = 0
	}
	if attributed {
		for _, st := range chain {
			regOf(events[st.idx].Region).OnPath++
		}
		for _, rs := range regStats {
			rep.Regions = append(rep.Regions, *rs)
		}
		sort.Slice(rep.Regions, func(i, j int) bool { return rep.Regions[i].Region < rep.Regions[j].Region })
	}

	var sum model.Time
	var mx model.Time
	for _, f := range rep.PerRankFinish {
		sum += f
		if f > mx {
			mx = f
		}
	}
	if sum > 0 {
		rep.Imbalance = float64(mx) / (float64(sum) / float64(n))
	} else {
		rep.Imbalance = 1
	}
	return rep
}
