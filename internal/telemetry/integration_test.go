package telemetry_test

import (
	"strings"
	"testing"
	"time"

	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/patterns"
	"commintent/internal/shmem"
	"commintent/internal/spmd"
	"commintent/internal/telemetry"
	"commintent/internal/trace"
)

// runInstrumented executes a named pattern over n ranks with telemetry
// attached and returns the telemetry and the raw event trace.
func runInstrumented(t testing.TB, n int, pattern string, iters int) (*telemetry.Telemetry, *trace.Collector) {
	t.Helper()
	w, err := spmd.NewWorld(n, model.GeminiLike())
	if err != nil {
		t.Fatal(err)
	}
	tele := telemetry.New(n, 0)
	w.SetTelemetry(tele)
	col := trace.Attach(w.Fabric())
	err = w.Run(func(rk *spmd.Rank) error {
		shm := shmem.New(rk)
		env, err := core.NewEnv(mpi.World(rk), shm)
		if err != nil {
			return err
		}
		defer env.Close()
		return patterns.Run(pattern, rk, env, shm, core.TargetMPI2Side, 4, iters)
	})
	if err != nil {
		t.Fatal(err)
	}
	return tele, col
}

func TestEndToEndMetricsAndSpans(t *testing.T) {
	const n = 4
	tele, col := runInstrumented(t, n, "halo", 2)
	reg := tele.Registry()

	// Every rank executed 2 regions with 2 directives each.
	for r := 0; r < n; r++ {
		if got := reg.CounterValue("core_directives_total", telemetry.Rank(r)); got != 4 {
			t.Errorf("rank %d directives = %d, want 4", r, got)
		}
		if got := reg.CounterValue("core_regions_total", telemetry.Rank(r)); got != 2 {
			t.Errorf("rank %d regions = %d, want 2", r, got)
		}
	}
	// Interior ranks send both ways each iteration.
	if got := reg.CounterValue("simnet_events_total", telemetry.L("kind", "send"), telemetry.Rank(1)); got != 4 {
		t.Errorf("rank 1 sends = %d, want 4", got)
	}
	// Edge ranks send one way each iteration.
	if got := reg.CounterValue("simnet_events_total", telemetry.L("kind", "send"), telemetry.Rank(0)); got != 2 {
		t.Errorf("rank 0 sends = %d, want 2", got)
	}

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, series := range []string{
		"core_directives_total", "core_syncs_consolidated_total",
		"mpi_idle_virtual_ns_total", "mpi_wait_virtual_ns_bucket",
		"shmem_barrier_total", "simnet_bytes_total",
		"simnet_unexpected_queue_hwm",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %s", series)
		}
	}

	// Spans were recorded on every rank, nested sanely and monotone in
	// virtual time.
	tr := tele.Tracer()
	names := map[string]bool{}
	for r := 0; r < n; r++ {
		spans := tr.RankSpans(r)
		if len(spans) == 0 {
			t.Fatalf("rank %d recorded no spans", r)
		}
		for _, s := range spans {
			if s.End < s.Start {
				t.Fatalf("span %s on rank %d runs backward: %v -> %v", s.Name, r, s.Start, s.End)
			}
			names[s.Name] = true
		}
	}
	for _, want := range []string{"comm_parameters", "comm_p2p", "lower", "flush", "MPI_Isend", "MPI_Waitall"} {
		if !names[want] {
			t.Errorf("no %q span recorded (have %v)", want, names)
		}
	}

	// The critical-path report sums the same idle time the MPI layer
	// counted, and sees all ranks finish.
	rep := telemetry.CriticalPath(col.Events(), n)
	if rep.Makespan <= 0 || rep.ChainEvents == 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	for r := 0; r < n; r++ {
		if rep.PerRankFinish[r] <= 0 {
			t.Errorf("rank %d never finished", r)
		}
	}
	var repIdle, ctrIdle int64
	for r := 0; r < n; r++ {
		repIdle += int64(rep.PerRankIdle[r])
		ctrIdle += reg.CounterValue("mpi_idle_virtual_ns_total", telemetry.Rank(r)) +
			reg.CounterValue("shmem_idle_virtual_ns_total", telemetry.Rank(r))
	}
	if repIdle > ctrIdle {
		t.Errorf("report idle %d exceeds substrate-counted idle %d", repIdle, ctrIdle)
	}
}

func TestUninstrumentedWorldRunsWithNilTelemetry(t *testing.T) {
	w, err := spmd.NewWorld(2, model.Uniform(10))
	if err != nil {
		t.Fatal(err)
	}
	if w.Telemetry() != nil {
		t.Fatal("fresh world has telemetry")
	}
	err = w.Run(func(rk *spmd.Rank) error {
		shm := shmem.New(rk)
		env, err := core.NewEnv(mpi.World(rk), shm)
		if err != nil {
			return err
		}
		defer env.Close()
		return patterns.Run("ring", rk, env, shm, core.TargetMPI2Side, 4, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// ringDuration wall-clocks one ring run.
func ringDuration(tb testing.TB, n, iters int, instrumented bool) time.Duration {
	w, err := spmd.NewWorld(n, model.Uniform(10))
	if err != nil {
		tb.Fatal(err)
	}
	if instrumented {
		w.SetTelemetry(telemetry.New(n, 0))
	}
	start := time.Now()
	err = w.Run(func(rk *spmd.Rank) error {
		shm := shmem.New(rk)
		env, err := core.NewEnv(mpi.World(rk), shm)
		if err != nil {
			return err
		}
		defer env.Close()
		return patterns.Run("ring", rk, env, shm, core.TargetMPI2Side, 4, iters)
	})
	d := time.Since(start)
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// BenchmarkTelemetryOverhead compares a fully instrumented ring run against
// the same run with telemetry disabled (nil handles everywhere).
func BenchmarkTelemetryOverhead(b *testing.B) {
	for _, mode := range []struct {
		name         string
		instrumented bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ringDuration(b, 4, 8, mode.instrumented)
			}
		})
	}
}

// Package-level sinks the compiler cannot prove nil, so the disabled-path
// measurement below exercises the real nil checks.
var (
	nilReg     *telemetry.Registry
	nilCounter = nilReg.Counter("x")
	nilHist    = nilReg.Histogram("y")
	nilTracer  *telemetry.Tracer
)

// TestDisabledTelemetryOverheadUnderFivePercent bounds the cost the nil
// instrumentation adds to one directive execution. A directive's disabled
// instrumentation is a handful of nil-receiver calls; the test measures a
// deliberately oversized bundle of them and requires it to stay under 5% of
// the measured per-directive execution time — a generous ceiling, since the
// real ratio is orders of magnitude smaller.
func TestDisabledTelemetryOverheadUnderFivePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const n, iters = 4, 64
	// Per-directive wall time with telemetry disabled (each rank runs
	// iters directives).
	perDirective := ringDuration(t, n, iters, false) / time.Duration(iters)

	// An oversized disabled-path bundle: ~4x the nil calls a directive
	// actually makes.
	bundle := func() {
		for k := 0; k < 10; k++ {
			nilCounter.Inc()
			nilCounter.AddTime(3)
			nilHist.Observe(5)
			sp := nilTracer.Begin(0, "op", "c", 0)
			sp.End(1)
		}
	}
	const reps = 200000
	start := time.Now()
	for i := 0; i < reps; i++ {
		bundle()
	}
	perBundle := time.Since(start) / reps

	if perBundle*20 > perDirective {
		t.Errorf("disabled instrumentation bundle %v exceeds 5%% of directive time %v", perBundle, perDirective)
	}
}
