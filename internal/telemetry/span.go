package telemetry

import (
	"sync"

	"commintent/internal/model"
)

// DefaultSpanCap is the per-rank ring-buffer capacity used when the caller
// does not configure one.
const DefaultSpanCap = 4096

// Span is one completed, virtually-timed interval on a rank: a directive
// execution, a lowering phase, or a fabric operation. Parent is the ID of
// the span that was open on the same rank when this one began (0 = root).
type Span struct {
	Rank   int
	Name   string
	Cat    string
	Start  model.Time
	End    model.Time
	ID     int64
	Parent int64

	// Region is the interned directive-region ID active when the span began
	// (see simnet.Fabric.InternRegion); 0 = unattributed.
	Region int
}

// Dur reports the span's virtual duration.
func (s Span) Dur() model.Time { return s.End - s.Start }

// rankSpans is one rank's recording state. Each rank is a single
// goroutine, so the mutex is effectively uncontended; it exists so that
// export (Spans, WriteChromeTrace) can run concurrently with a live rank.
type rankSpans struct {
	mu      sync.Mutex
	nextID  int64
	stack   []int64 // open span IDs, innermost last
	ring    []Span  // capacity-bounded record of finished spans
	next    int     // ring write position
	wrapped bool
	dropped int64 // finished spans overwritten after wrap
}

// Tracer records spans into per-rank ring buffers with a configurable
// capacity. A nil *Tracer hands out no-op span handles.
type Tracer struct {
	cap   int
	ranks []rankSpans
}

// NewTracer creates a tracer for n ranks with the given per-rank span
// capacity (DefaultSpanCap if perRankCap <= 0).
func NewTracer(n, perRankCap int) *Tracer {
	if perRankCap <= 0 {
		perRankCap = DefaultSpanCap
	}
	return &Tracer{cap: perRankCap, ranks: make([]rankSpans, n)}
}

// SpanHandle is an open span. It is a value type so that beginning a span
// on a disabled (nil) tracer allocates nothing.
type SpanHandle struct {
	t      *Tracer
	rank   int
	name   string
	cat    string
	start  model.Time
	id     int64
	parent int64
	region int
}

// Begin opens a span on rank at virtual time start. The parent is the
// innermost span currently open on the same rank. On a nil tracer (or an
// out-of-range rank) the returned handle no-ops.
func (t *Tracer) Begin(rank int, name, cat string, start model.Time) SpanHandle {
	return t.BeginRegion(rank, name, cat, start, 0)
}

// BeginRegion is Begin with an explicit directive-region attribution.
func (t *Tracer) BeginRegion(rank int, name, cat string, start model.Time, region int) SpanHandle {
	if t == nil || rank < 0 || rank >= len(t.ranks) {
		return SpanHandle{}
	}
	rs := &t.ranks[rank]
	rs.mu.Lock()
	rs.nextID++
	id := rs.nextID
	var parent int64
	if len(rs.stack) > 0 {
		parent = rs.stack[len(rs.stack)-1]
	}
	rs.stack = append(rs.stack, id)
	rs.mu.Unlock()
	return SpanHandle{t: t, rank: rank, name: name, cat: cat, start: start, id: id, parent: parent, region: region}
}

// End closes the span at virtual time end and records it into the rank's
// ring buffer. Safe on a zero handle.
func (h SpanHandle) End(end model.Time) {
	if h.t == nil {
		return
	}
	if end < h.start {
		end = h.start
	}
	rs := &h.t.ranks[h.rank]
	sp := Span{Rank: h.rank, Name: h.name, Cat: h.cat, Start: h.start, End: end, ID: h.id, Parent: h.parent, Region: h.region}
	rs.mu.Lock()
	// Pop this span from the open stack; spans end LIFO in practice, but
	// tolerate out-of-order ends by removing wherever the ID sits.
	for i := len(rs.stack) - 1; i >= 0; i-- {
		if rs.stack[i] == h.id {
			rs.stack = append(rs.stack[:i], rs.stack[i+1:]...)
			break
		}
	}
	if len(rs.ring) < h.t.cap {
		rs.ring = append(rs.ring, sp)
	} else {
		rs.ring[rs.next] = sp
		rs.wrapped = true
		rs.dropped++
	}
	rs.next++
	if rs.next == h.t.cap {
		rs.next = 0
	}
	rs.mu.Unlock()
}

// Ranks reports the number of ranks the tracer records.
func (t *Tracer) Ranks() int {
	if t == nil {
		return 0
	}
	return len(t.ranks)
}

// Cap reports the per-rank ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return t.cap
}

// Dropped reports how many finished spans were overwritten on rank after
// its ring filled.
func (t *Tracer) Dropped(rank int) int64 {
	if t == nil || rank < 0 || rank >= len(t.ranks) {
		return 0
	}
	rs := &t.ranks[rank]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.dropped
}

// RankSpans returns rank's retained spans, oldest first.
func (t *Tracer) RankSpans(rank int) []Span {
	if t == nil || rank < 0 || rank >= len(t.ranks) {
		return nil
	}
	rs := &t.ranks[rank]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]Span, 0, len(rs.ring))
	if rs.wrapped {
		out = append(out, rs.ring[rs.next:]...)
		out = append(out, rs.ring[:rs.next]...)
	} else {
		out = append(out, rs.ring...)
	}
	return out
}

// Spans returns every retained span of every rank, rank by rank, each
// rank oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for r := range t.ranks {
		out = append(out, t.RankSpans(r)...)
	}
	return out
}
