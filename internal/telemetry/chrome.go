package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format ("X" complete
// events plus "M" metadata), loadable by Perfetto and chrome://tracing.
// Timestamps are microseconds; virtual nanoseconds divide by 1e3.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object trace viewers accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every retained span as Chrome trace_event JSON.
// Each rank becomes one thread (tid = rank) of process 0, named so the
// timeline reads "rank N". Spans are emitted per rank in start order, so a
// halo exchange is visible as interlocking bars across the rank rows.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("telemetry: WriteChromeTrace on nil tracer")
	}
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	for r := 0; r < t.Ranks(); r++ {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
		spans := t.RankSpans(r)
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for _, s := range spans {
			dur := float64(s.Dur()) / 1e3
			args := map[string]any{"id": s.ID, "parent": s.Parent}
			if s.Region != 0 {
				args["region"] = s.Region
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: s.Name, Cat: s.Cat, Ph: "X",
				TS: float64(s.Start) / 1e3, Dur: &dur,
				PID: 0, TID: s.Rank,
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
