package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"commintent/internal/model"
)

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	h := tr.Begin(0, "x", "c", 10)
	h.End(20) // must not panic
	if tr.Ranks() != 0 || tr.Cap() != 0 || tr.Spans() != nil || tr.RankSpans(0) != nil || tr.Dropped(0) != 0 {
		t.Fatal("nil tracer leaked state")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil WriteChromeTrace did not error")
	}
	// Out-of-range ranks behave like disabled handles.
	tr2 := NewTracer(2, 8)
	tr2.Begin(-1, "x", "c", 0).End(1)
	tr2.Begin(5, "x", "c", 0).End(1)
	if n := len(tr2.Spans()); n != 0 {
		t.Fatalf("out-of-range Begin recorded %d spans", n)
	}
}

func TestSpanNestingAndParents(t *testing.T) {
	tr := NewTracer(2, 16)
	outer := tr.Begin(1, "outer", "d", 100)
	inner := tr.Begin(1, "inner", "d", 110)
	inner.End(120)
	outer.End(200)
	spans := tr.RankSpans(1)
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	// Ring order is end order: inner finished first.
	if spans[0].Name != "inner" || spans[1].Name != "outer" {
		t.Fatalf("order: %v", spans)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("inner parent = %d, want outer ID %d", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Parent != 0 {
		t.Errorf("outer parent = %d, want 0 (root)", spans[1].Parent)
	}
	if spans[0].Dur() != 10 || spans[1].Dur() != 100 {
		t.Errorf("durations: %v %v", spans[0].Dur(), spans[1].Dur())
	}
	// Sibling after the nest is a root again.
	sib := tr.Begin(1, "sibling", "d", 210)
	sib.End(220)
	if s := tr.RankSpans(1)[2]; s.Parent != 0 {
		t.Errorf("sibling parent = %d", s.Parent)
	}
	// Other ranks were untouched.
	if len(tr.RankSpans(0)) != 0 {
		t.Error("rank 0 recorded spans")
	}
}

func TestSpanEndClampsBackwardTime(t *testing.T) {
	tr := NewTracer(1, 4)
	h := tr.Begin(0, "x", "c", 50)
	h.End(40)
	if s := tr.RankSpans(0)[0]; s.End != s.Start || s.Dur() != 0 {
		t.Fatalf("backward end not clamped: %+v", s)
	}
}

func TestSpanRingWrapAndDropped(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 7; i++ {
		h := tr.Begin(0, "op", "c", model10(i))
		h.End(model10(i) + 5)
	}
	spans := tr.RankSpans(0)
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, cap 4", len(spans))
	}
	// Oldest first: spans 3..6 survive.
	for i, s := range spans {
		if s.Start != model10(i+3) {
			t.Fatalf("span %d start %v, want %v", i, s.Start, model10(i+3))
		}
	}
	if d := tr.Dropped(0); d != 3 {
		t.Fatalf("dropped = %d, want 3", d)
	}
}

func model10(i int) model.Time { return model.Time(i) * 10 }

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(2, 8)
	a := tr.Begin(0, "alpha", "cat", 1000)
	a.End(3500)
	b := tr.Begin(1, "beta", "cat", 2000)
	b.End(2000)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	meta, complete := 0, 0
	tids := map[int]bool{}
	for _, e := range out.TraceEvents {
		tids[e.TID] = true
		switch e.Ph {
		case "M":
			meta++
			if !strings.HasPrefix(e.Args["name"].(string), "rank ") {
				t.Errorf("metadata name = %v", e.Args["name"])
			}
		case "X":
			complete++
			if e.Dur < 0 {
				t.Errorf("negative duration on %s", e.Name)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta != 2 || complete != 2 {
		t.Fatalf("meta=%d complete=%d", meta, complete)
	}
	if !tids[0] || !tids[1] {
		t.Fatalf("missing rank rows: %v", tids)
	}
	// Virtual ns scale to trace µs.
	for _, e := range out.TraceEvents {
		if e.Name == "alpha" {
			if e.TS != 1.0 || e.Dur != 2.5 {
				t.Errorf("alpha ts=%v dur=%v, want 1.0/2.5", e.TS, e.Dur)
			}
		}
	}
}
