package telemetry

import (
	"commintent/internal/simnet"
	"commintent/internal/typemap"
)

// Telemetry bundles the metrics registry and the span tracer for one
// simulated world. A nil *Telemetry is the disabled state: every accessor
// returns nil handles and every handle no-ops, so instrumented code paths
// cost a nil check when telemetry is off.
type Telemetry struct {
	reg *Registry
	tr  *Tracer
}

// New creates a Telemetry for n ranks with the given per-rank span
// capacity (DefaultSpanCap if perRankSpanCap <= 0).
func New(n, perRankSpanCap int) *Telemetry {
	t := &Telemetry{reg: NewRegistry(), tr: NewTracer(n, perRankSpanCap)}
	// Surface tracer ring overflow as a pull counter so truncated Chrome
	// exports are detectable from the metrics plane alone.
	for r := 0; r < n; r++ {
		r := r
		t.reg.CounterFunc("telemetry_spans_dropped_total",
			func() int64 { return t.tr.Dropped(r) }, Rank(r))
	}
	return t
}

// Registry returns the metrics registry (nil when disabled).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Tracer returns the span tracer (nil when disabled).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tr
}

// fabricMeters holds the pre-resolved per-rank, per-kind counter handles
// the fabric observer updates, so the hot path does no map lookups.
type fabricMeters struct {
	events [][]*Counter // [rank][kind]
	bytes  []*Counter   // [kind], payload bytes for data-moving kinds
}

// eventKinds is the number of simnet event kinds metered. Kinds are dense
// small ints starting at EvSend.
const eventKinds = int(simnet.EvFault) + 1

// BindFabric subscribes the telemetry to all events of the fabric,
// populating the per-rank operation counters and byte totals, and
// registers pull gauges for each endpoint's unexpected-queue
// high-watermark. Call before ranks start (spmd.World.SetTelemetry does).
func (t *Telemetry) BindFabric(f *simnet.Fabric) {
	if t == nil || f == nil {
		return
	}
	n := f.Size()
	m := &fabricMeters{
		events: make([][]*Counter, n),
		bytes:  make([]*Counter, eventKinds),
	}
	for k := 0; k < eventKinds; k++ {
		kind := simnet.EventKind(k)
		switch kind {
		case simnet.EvSend, simnet.EvPut, simnet.EvGet, simnet.EvRecvComplete:
			m.bytes[k] = t.reg.Counter("simnet_bytes_total", L("kind", kind.String()))
		}
	}
	for r := 0; r < n; r++ {
		m.events[r] = make([]*Counter, eventKinds)
		for k := 0; k < eventKinds; k++ {
			m.events[r][k] = t.reg.Counter("simnet_events_total",
				L("kind", simnet.EventKind(k).String()), Rank(r))
		}
		ep := f.Endpoint(r)
		t.reg.GaugeFunc("simnet_unexpected_queue_hwm",
			func() int64 { return int64(ep.UnexpectedHighWatermark()) }, Rank(r))
	}
	f.Observe(func(e simnet.Event) {
		k := int(e.Kind)
		if e.Rank < 0 || e.Rank >= n || k < 0 || k >= eventKinds {
			return
		}
		m.events[e.Rank][k].Inc()
		if c := m.bytes[k]; c != nil {
			c.Add(int64(e.Bytes))
		}
	})
	t.bindDataPlane()
}

// bindDataPlane registers pull gauges over the data plane's process-global
// counters: the payload pool's hit/miss totals and the pack/unpack path
// split (zero-copy fast path vs reflection walk). They are process-wide —
// the pool and the typemap dispatch are shared across worlds — so the
// series carry no rank label.
func (t *Telemetry) bindDataPlane() {
	t.reg.GaugeFunc("simnet_payload_pool_ops_total",
		func() int64 { h, _ := simnet.PoolStats(); return h }, L("result", "hit"))
	t.reg.GaugeFunc("simnet_payload_pool_ops_total",
		func() int64 { _, m := simnet.PoolStats(); return m }, L("result", "miss"))
	t.reg.GaugeFunc("typemap_pack_ops_total",
		func() int64 { fe, _, _, _ := typemap.PathStats(); return fe }, L("op", "encode"), L("path", "fast"))
	t.reg.GaugeFunc("typemap_pack_ops_total",
		func() int64 { _, fd, _, _ := typemap.PathStats(); return fd }, L("op", "decode"), L("path", "fast"))
	t.reg.GaugeFunc("typemap_pack_ops_total",
		func() int64 { _, _, re, _ := typemap.PathStats(); return re }, L("op", "encode"), L("path", "reflect"))
	t.reg.GaugeFunc("typemap_pack_ops_total",
		func() int64 { _, _, _, rd := typemap.PathStats(); return rd }, L("op", "decode"), L("path", "reflect"))
}
