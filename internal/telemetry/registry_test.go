package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndHandlesNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil handles: %v %v %v", c, g, h)
	}
	// All of these must be safe no-ops.
	c.Inc()
	c.Add(5)
	c.AddTime(7)
	g.Set(3)
	g.Add(-1)
	g.SetMax(9)
	h.Observe(100)
	r.GaugeFunc("f", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles accumulated values")
	}
	if v := r.CounterValue("x"); v != 0 {
		t.Fatalf("nil registry CounterValue = %d", v)
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WriteProm: %q, %v", sb.String(), err)
	}
	b, err := r.SnapshotJSON()
	if err != nil || string(b) != "{}" {
		t.Fatalf("nil SnapshotJSON: %q, %v", b, err)
	}
}

func TestSeriesIdentityIgnoresLabelOrder(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("b", "2"), L("a", "1"))
	b := r.Counter("m", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order created distinct series")
	}
	a.Add(3)
	if got := r.CounterValue("m", L("b", "2"), L("a", "1")); got != 3 {
		t.Fatalf("CounterValue = %d, want 3", got)
	}
	if c := r.Counter("m", L("a", "1")); c == a {
		t.Fatal("different label set shared a handle")
	}
}

func TestGaugeSetMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("hwm")
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax regressed: %d", g.Value())
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Fatalf("SetMax did not raise: %d", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(0) // bucket 0
	h.Observe(1) // bits.Len(1)=1 -> bucket 1
	h.Observe(3) // bits.Len(3)=2 -> bucket 2
	h.Observe(1 << 41)
	h.Observe(1 << 55) // beyond range, clamped to last bucket
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := int64(0 + 1 + 3 + 1<<41 + 1<<55)
	if int64(h.Sum()) != wantSum {
		t.Fatalf("sum = %d, want %d", h.Sum(), wantSum)
	}
	if got := h.buckets[0].Load(); got != 1 {
		t.Errorf("bucket 0 = %d", got)
	}
	if got := h.buckets[1].Load(); got != 1 {
		t.Errorf("bucket 1 = %d", got)
	}
	if got := h.buckets[2].Load(); got != 1 {
		t.Errorf("bucket 2 = %d", got)
	}
	if got := h.buckets[42].Load(); got != 2 {
		t.Errorf("overflow bucket = %d", got)
	}
}

func TestWritePromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", Rank(0)).Add(4)
	r.Counter("ops_total", Rank(1)).Add(6)
	r.Gauge("depth").Set(2)
	r.GaugeFunc("pulled", func() int64 { return 42 })
	h := r.Histogram("wait_ns", Rank(0))
	h.Observe(3)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE ops_total counter",
		`ops_total{rank="0"} 4`,
		`ops_total{rank="1"} 6`,
		"# TYPE depth gauge",
		"depth 2",
		"pulled 42",
		"# TYPE wait_ns histogram",
		`wait_ns_bucket{rank="0",le="1"} 0`,
		`wait_ns_bucket{rank="0",le="4"} 1`,
		`wait_ns_bucket{rank="0",le="+Inf"} 1`,
		`wait_ns_sum{rank="0"} 3`,
		`wait_ns_count{rank="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The histogram buckets must be cumulative: every bucket line's value
	// is non-decreasing down the series.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "wait_ns_bucket") {
			continue
		}
		var v int64
		if _, err := fmtSscanLast(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("buckets not cumulative at %q", line)
		}
		last = v
	}
	// Determinism: a second write is byte-identical.
	var sb2 strings.Builder
	if err := r.WriteProm(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("exposition not deterministic")
	}
}

// fmtSscanLast parses the trailing integer of a "series value" line.
func fmtSscanLast(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	return 1, json.Unmarshal([]byte(line[i+1:]), v)
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", Rank(2)).Add(7)
	r.Histogram("h").Observe(5)
	b, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("snapshot not valid JSON: %v\n%s", err, b)
	}
	var cv int64
	if err := json.Unmarshal(m[`c{rank="2"}`], &cv); err != nil || cv != 7 {
		t.Errorf("counter series: %v %d", err, cv)
	}
	var hv struct {
		Count   int64   `json:"count"`
		SumNS   int64   `json:"sum_ns"`
		Buckets []int64 `json:"log2_buckets"`
	}
	if err := json.Unmarshal(m["h"], &hv); err != nil {
		t.Fatalf("histogram series: %v", err)
	}
	if hv.Count != 1 || hv.SumNS != 5 || len(hv.Buckets) != 4 {
		t.Errorf("histogram snapshot = %+v", hv)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("shared").Inc()
				r.Histogram("hist").Observe(1)
				r.Gauge("g").SetMax(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("shared"); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := r.Histogram("hist").Count(); got != workers*each {
		t.Fatalf("histogram count = %d", got)
	}
	if got := r.Gauge("g").Value(); got != each-1 {
		t.Fatalf("gauge max = %d", got)
	}
}
