package telemetry_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/patterns"
	"commintent/internal/shmem"
	"commintent/internal/simnet"
	"commintent/internal/spmd"
	"commintent/internal/telemetry"
)

// get fetches a URL and returns status and body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServeLiveWorld runs a 256-rank world with the introspection plane
// attached, polls it while the ranks are running, and checks the final
// state of every endpoint.
func TestServeLiveWorld(t *testing.T) {
	const n = 256
	w, err := spmd.NewWorld(n, model.Uniform(50))
	if err != nil {
		t.Fatal(err)
	}
	tele := telemetry.New(n, 0)
	w.SetTelemetry(tele)
	w.Fabric().EnableRecorder(simnet.DefaultRecorderCap)

	srv, err := telemetry.Serve("127.0.0.1:0", tele, w.Fabric())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(rk *spmd.Rank) error {
			shm := shmem.New(rk)
			env, err := core.NewEnv(mpi.World(rk), shm)
			if err != nil {
				return err
			}
			defer env.Close()
			return patterns.Run("halo", rk, env, shm, core.TargetMPI2Side, 4, 4)
		})
	}()

	// Poll the live world: the handlers must answer mid-run, whatever
	// in-flight state they observe.
	if code, _ := get(t, base+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics mid-run: HTTP %d", code)
	}
	code, body := get(t, base+"/ranks")
	if code != http.StatusOK {
		t.Fatalf("/ranks mid-run: HTTP %d", code)
	}
	var live []map[string]any
	if err := json.Unmarshal(body, &live); err != nil {
		t.Fatalf("/ranks mid-run is not JSON: %v", err)
	}
	if len(live) != n {
		t.Fatalf("/ranks lists %d ranks, want %d", len(live), n)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Final state: metrics exposition carries fabric series, /ranks shows
	// every rank recorded traffic, the snapshot parses, and no failures
	// were filed.
	code, body = get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), "simnet_events_total") {
		t.Fatalf("/metrics: HTTP %d, missing simnet_events_total", code)
	}
	_, body = get(t, base+"/ranks")
	var ranks []struct {
		Rank           int   `json:"rank"`
		LastV          int64 `json:"last_v_ns"`
		SkewNS         int64 `json:"clock_skew_ns"`
		EventsRecorded int64 `json:"events_recorded"`
	}
	if err := json.Unmarshal(body, &ranks); err != nil {
		t.Fatal(err)
	}
	maxV := int64(0)
	for _, r := range ranks {
		if r.EventsRecorded == 0 {
			t.Errorf("rank %d recorded no events", r.Rank)
		}
		if r.LastV > maxV {
			maxV = r.LastV
		}
	}
	for _, r := range ranks {
		if r.SkewNS != maxV-r.LastV {
			t.Errorf("rank %d skew = %d, want %d", r.Rank, r.SkewNS, maxV-r.LastV)
		}
	}
	code, body = get(t, base+"/snapshot.json")
	if code != http.StatusOK {
		t.Fatalf("/snapshot.json: HTTP %d", code)
	}
	var snap any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/snapshot.json is not JSON: %v", err)
	}
	_, body = get(t, base+"/postmortem")
	var pms []any
	if err := json.Unmarshal(body, &pms); err != nil || len(pms) != 0 {
		t.Fatalf("/postmortem = %s (err %v), want []", body, err)
	}
}

// TestServeNilSafe serves a world with no telemetry and no recorder: every
// endpoint must answer empty rather than crash.
func TestServeNilSafe(t *testing.T) {
	srv, err := telemetry.Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, path := range []string{"/metrics", "/snapshot.json", "/ranks", "/postmortem"} {
		if code, _ := get(t, base+path); code != http.StatusOK {
			t.Errorf("%s with nil handles: HTTP %d", path, code)
		}
	}
}

// TestMetricNamesCollisionFree runs the full instrumented stack — fabric,
// both substrates, collectives, the directive layer — and asserts no metric
// name was registered under two different Prometheus kinds; the exposition
// would silently lie otherwise.
func TestMetricNamesCollisionFree(t *testing.T) {
	tele, _ := runInstrumented(t, 4, "halo", 2)
	if conflicts := tele.Registry().TypeConflicts(); len(conflicts) != 0 {
		t.Fatalf("metric name/kind collisions:\n%s", strings.Join(conflicts, "\n"))
	}
	// And the detector itself works.
	reg := telemetry.NewRegistry()
	reg.Counter("clashing_series")
	reg.Gauge("clashing_series")
	got := reg.TypeConflicts()
	if len(got) != 1 || !strings.Contains(got[0], "clashing_series") {
		t.Fatalf("conflict not detected: %v", got)
	}
}

// TestHistogramQuantiles pins the log2-bucket interpolation on a known
// distribution.
func TestHistogramQuantiles(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("q_test")
	// 100 observations of 1000 (bucket [512,1024)): every quantile must
	// land inside the bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v < 512 || v > 1024 {
			t.Errorf("q%.2f = %v, want within [512,1024]", q, v)
		}
	}
	// A long tail moves p99 far above p50.
	h2 := reg.Histogram("q_tail")
	for i := 0; i < 99; i++ {
		h2.Observe(100)
	}
	h2.Observe(1 << 20)
	if p50, p99 := h2.Quantile(0.5), h2.Quantile(0.999); p99 < 100*p50 {
		t.Errorf("tail invisible: p50=%v p999=%v", p50, p99)
	}
	// Nil and empty are zero.
	var nilH *telemetry.Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile != 0")
	}
	if reg.Histogram("q_empty").Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	// FindHistogram probes without creating.
	if reg.FindHistogram("q_test") == nil {
		t.Error("FindHistogram missed an existing series")
	}
	if reg.FindHistogram("q_missing") != nil {
		t.Error("FindHistogram invented a series")
	}
}
