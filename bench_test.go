// Package commintent's root benchmarks regenerate every figure of the
// paper's evaluation section and the ablations DESIGN.md calls out. Each
// benchmark runs the full simulated experiment per iteration and reports
// the *virtual* time of the measured phase as the custom metric
// "vtime-us/op" (wall time of a benchmark iteration measures the simulator,
// not the modelled machine).
package commintent

import (
	"fmt"
	"sync"
	"testing"

	"commintent/internal/bench"
	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/shmem"
	"commintent/internal/spmd"
	"commintent/internal/wllsms"
)

// benchParams is the standard small-sweep configuration: 1 WL master + 2
// LSMS instances of 16 ranks (33 processes, the paper's smallest x value).
func benchParams() wllsms.Params {
	p := wllsms.DefaultParams()
	p.Groups = 2
	return p
}

// measureApp runs one fresh world on the calibrated profile and reports
// f's measured virtual time.
func measureApp(b *testing.B, p wllsms.Params, f func(*wllsms.App) (model.Time, error)) model.Time {
	return measureAppProf(b, p, model.GeminiLike(), f)
}

// measureAppProf is measureApp on an explicit machine profile.
func measureAppProf(b *testing.B, p wllsms.Params, prof *model.Profile, f func(*wllsms.App) (model.Time, error)) model.Time {
	b.Helper()
	var out model.Time
	var mu sync.Mutex
	err := spmd.Run(p.NProcs(), prof, func(rk *spmd.Rank) error {
		app, err := wllsms.Setup(rk, p)
		if err != nil {
			return err
		}
		defer app.Close()
		d, err := f(app)
		if err != nil {
			return err
		}
		if rk.ID == 0 {
			mu.Lock()
			out = d
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

func reportVirtual(b *testing.B, total model.Time) {
	b.Helper()
	b.ReportMetric(total.Micros()/float64(b.N), "vtime-us/op")
}

func stageZeroSpins(app *wllsms.App) error {
	var spins [][]float64
	if app.Role == wllsms.RoleWL {
		spins = make([][]float64, app.P.Groups)
		for g := range spins {
			spins[g] = make([]float64, 3*app.P.NumAtoms)
		}
	}
	return app.StageSpins(spins)
}

// BenchmarkFig3SingleAtomData regenerates Figure 3's rows: the initial
// distribution of the system's potentials and electron densities.
func BenchmarkFig3SingleAtomData(b *testing.B) {
	cases := []struct {
		name string
		v    wllsms.Variant
		tgt  core.Target
	}{
		{"original", wllsms.VariantOriginal, core.TargetDefault},
		{"directive-mpi2side", wllsms.VariantDirective, core.TargetMPI2Side},
		{"directive-shmem", wllsms.VariantDirective, core.TargetSHMEM},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var total model.Time
			for i := 0; i < b.N; i++ {
				total += measureApp(b, benchParams(), func(app *wllsms.App) (model.Time, error) {
					return app.DistributeAtoms(tc.v, tc.tgt)
				})
			}
			reportVirtual(b, total)
		})
	}
}

// BenchmarkFig4SetEvec regenerates Figure 4's rows: the within-LIZ random
// spin configuration transfer in its four implementations.
func BenchmarkFig4SetEvec(b *testing.B) {
	cases := []struct {
		name string
		v    wllsms.Variant
		tgt  core.Target
	}{
		{"original", wllsms.VariantOriginal, core.TargetDefault},
		{"original-waitall", wllsms.VariantOriginalWaitall, core.TargetDefault},
		{"directive-mpi2side", wllsms.VariantDirective, core.TargetMPI2Side},
		{"directive-shmem", wllsms.VariantDirective, core.TargetSHMEM},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var total model.Time
			for i := 0; i < b.N; i++ {
				total += measureApp(b, benchParams(), func(app *wllsms.App) (model.Time, error) {
					if _, err := app.DistributeAtoms(wllsms.VariantOriginal, core.TargetDefault); err != nil {
						return 0, err
					}
					if err := stageZeroSpins(app); err != nil {
						return 0, err
					}
					return app.SetEvec(tc.v, tc.tgt)
				})
			}
			reportVirtual(b, total)
		})
	}
}

// BenchmarkFig5Overlap regenerates Figure 5's rows: spin communication plus
// energy computation with the 10x GPU projection, sequential vs overlapped.
func BenchmarkFig5Overlap(b *testing.B) {
	run := func(b *testing.B, overlapped bool) {
		var total model.Time
		for i := 0; i < b.N; i++ {
			total += measureApp(b, benchParams(), func(app *wllsms.App) (model.Time, error) {
				if _, err := app.DistributeAtoms(wllsms.VariantOriginal, core.TargetDefault); err != nil {
					return 0, err
				}
				if err := stageZeroSpins(app); err != nil {
					return 0, err
				}
				if overlapped {
					d, _, err := app.CoreStatesOverlapped(core.TargetMPI2Side, 10)
					return d, err
				}
				d, _, err := app.CoreStatesSequential(wllsms.VariantOriginal, core.TargetDefault, 10)
				return d, err
			})
		}
		reportVirtual(b, total)
	}
	b.Run("sequential-optimized-compute", func(b *testing.B) { run(b, false) })
	b.Run("directive-overlap", func(b *testing.B) { run(b, true) })
}

// BenchmarkSmallMessageLatency reproduces the small-message latency gap the
// paper cites (refs [13], [14]): 8-256 byte transfers on the two-sided MPI
// path versus the one-sided SHMEM path.
func BenchmarkSmallMessageLatency(b *testing.B) {
	sizes := []int{8, 32, 128, 256, 4096}
	for _, size := range sizes {
		size := size
		b.Run(fmt.Sprintf("mpi-%dB", size), func(b *testing.B) {
			var total model.Time
			for i := 0; i < b.N; i++ {
				total += pingVirtual(b, false, size)
			}
			reportVirtual(b, total)
		})
		b.Run(fmt.Sprintf("shmem-%dB", size), func(b *testing.B) {
			var total model.Time
			for i := 0; i < b.N; i++ {
				total += pingVirtual(b, true, size)
			}
			reportVirtual(b, total)
		})
	}
}

// pingVirtual measures one 0->1 transfer-plus-completion in virtual time.
func pingVirtual(b *testing.B, oneSided bool, bytes int) model.Time {
	b.Helper()
	var out model.Time
	var mu sync.Mutex
	err := spmd.Run(2, model.GeminiLike(), func(rk *spmd.Rank) error {
		comm := mpi.World(rk)
		shm := shmem.New(rk)
		n := bytes / 8
		sym := shmem.MustAlloc[float64](shm, n)
		flag := shmem.MustAlloc[int64](shm, 1)
		buf := make([]float64, n)
		comm.Barrier()
		t0 := rk.Now()
		if oneSided {
			if rk.ID == 0 {
				if err := sym.Put(shm, 1, buf, 0); err != nil {
					return err
				}
				shm.Quiet()
				if err := flag.P(shm, 1, 0, 1); err != nil {
					return err
				}
			} else {
				if err := flag.WaitUntil(shm, 0, shmem.CmpGE, 1); err != nil {
					return err
				}
			}
		} else {
			if rk.ID == 0 {
				req, err := comm.Isend(buf, n, mpi.Float64, 1, 0)
				if err != nil {
					return err
				}
				if _, err := comm.Wait(req); err != nil {
					return err
				}
			} else {
				req, err := comm.Irecv(buf, n, mpi.Float64, 0, 0)
				if err != nil {
					return err
				}
				if _, err := comm.Wait(req); err != nil {
					return err
				}
			}
		}
		maxV := rk.World().Fabric().WorldBarrier().Wait(rk.ID, rk.Now())
		rk.Clock().AdvanceTo(maxV)
		if rk.ID == 0 {
			mu.Lock()
			out = maxV - t0
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkAblationWaitLoop isolates the design choice behind Figure 4's
// MPI gain: completing k requests with a per-request MPI_Wait loop versus a
// single consolidated MPI_Waitall.
func BenchmarkAblationWaitLoop(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		k := k
		for _, consolidated := range []bool{false, true} {
			consolidated := consolidated
			name := fmt.Sprintf("wait-loop-%dreqs", k)
			if consolidated {
				name = fmt.Sprintf("waitall-%dreqs", k)
			}
			b.Run(name, func(b *testing.B) {
				var total model.Time
				for i := 0; i < b.N; i++ {
					total += waitStrategyVirtual(b, k, consolidated)
				}
				reportVirtual(b, total)
			})
		}
	}
}

func waitStrategyVirtual(b *testing.B, k int, consolidated bool) model.Time {
	b.Helper()
	var out model.Time
	var mu sync.Mutex
	err := spmd.Run(2, model.GeminiLike(), func(rk *spmd.Rank) error {
		comm := mpi.World(rk)
		buf := make([]float64, 3)
		comm.Barrier()
		t0 := rk.Now()
		reqs := make([]*mpi.Request, 0, k)
		for j := 0; j < k; j++ {
			var req *mpi.Request
			var err error
			if rk.ID == 0 {
				req, err = comm.Isend(buf, 3, mpi.Float64, 1, j%16)
			} else {
				req, err = comm.Irecv(make([]float64, 3), 3, mpi.Float64, 0, j%16)
			}
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		if consolidated {
			if _, err := comm.Waitall(reqs); err != nil {
				return err
			}
		} else {
			for _, r := range reqs {
				if _, err := comm.Wait(r); err != nil {
					return err
				}
			}
		}
		maxV := rk.World().Fabric().WorldBarrier().Wait(rk.ID, rk.Now())
		rk.Clock().AdvanceTo(maxV)
		if rk.ID == 0 {
			mu.Lock()
			out = maxV - t0
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkAblationPackVsDatatype isolates Figure 3's design choice: moving
// a composite plus matrices by explicit MPI_Pack versus the directive's
// derived datatype + buffer lists.
func BenchmarkAblationPackVsDatatype(b *testing.B) {
	p := wllsms.DefaultParams()
	p.Groups = 1
	p.GroupSize = 4
	p.NumAtoms = 4
	b.Run("pack", func(b *testing.B) {
		var total model.Time
		for i := 0; i < b.N; i++ {
			total += measureApp(b, p, func(app *wllsms.App) (model.Time, error) {
				return app.DistributeAtoms(wllsms.VariantOriginal, core.TargetDefault)
			})
		}
		reportVirtual(b, total)
	})
	b.Run("derived-datatype", func(b *testing.B) {
		var total model.Time
		for i := 0; i < b.N; i++ {
			total += measureApp(b, p, func(app *wllsms.App) (model.Time, error) {
				return app.DistributeAtoms(wllsms.VariantDirective, core.TargetMPI2Side)
			})
		}
		reportVirtual(b, total)
	})
}

// BenchmarkAblationSyncPlacement compares place_sync(END_PARAM_REGION) in
// every region against deferring with END_ADJ_PARAM_REGIONS across a series
// of adjacent regions.
func BenchmarkAblationSyncPlacement(b *testing.B) {
	const regions = 8
	run := func(b *testing.B, deferSync bool) {
		var total model.Time
		for i := 0; i < b.N; i++ {
			total += syncPlacementVirtual(b, regions, deferSync)
		}
		reportVirtual(b, total)
	}
	b.Run("end-each-region", func(b *testing.B) { run(b, false) })
	b.Run("end-adjacent-regions", func(b *testing.B) { run(b, true) })
}

func syncPlacementVirtual(b *testing.B, regions int, deferSync bool) model.Time {
	b.Helper()
	var out model.Time
	var mu sync.Mutex
	err := spmd.Run(2, model.GeminiLike(), func(rk *spmd.Rank) error {
		comm := mpi.World(rk)
		shm := shmem.New(rk)
		env, err := core.NewEnv(comm, shm)
		if err != nil {
			return err
		}
		defer env.Close()
		bufs := make([][]float64, regions)
		for i := range bufs {
			bufs[i] = make([]float64, 8)
		}
		comm.Barrier()
		t0 := rk.Now()
		for i := 0; i < regions; i++ {
			opts := []core.Option{
				core.Sender(0), core.Receiver(1),
				core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
			}
			if deferSync && i < regions-1 {
				opts = append(opts, core.PlaceSync(core.EndAdjParamRegions))
			}
			buf := bufs[i]
			if err := env.Parameters(func(r *core.Region) error {
				return r.P2P(core.SBuf(buf), core.RBuf(buf))
			}, opts...); err != nil {
				return err
			}
		}
		maxV := rk.World().Fabric().WorldBarrier().Wait(rk.ID, rk.Now())
		rk.Clock().AdvanceTo(maxV)
		if rk.ID == 0 {
			mu.Lock()
			out = maxV - t0
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkAblationTargetSelection compares the auto size-based target
// heuristic against forcing each backend, for a small and a large message.
func BenchmarkAblationTargetSelection(b *testing.B) {
	for _, tc := range []struct {
		name  string
		elems int
		tgt   core.Target
	}{
		{"small-forced-mpi", 3, core.TargetMPI2Side},
		{"small-forced-shmem", 3, core.TargetSHMEM},
		{"small-auto", 3, core.TargetAuto},
		{"large-forced-mpi", 1 << 14, core.TargetMPI2Side},
		{"large-forced-shmem", 1 << 14, core.TargetSHMEM},
		{"large-auto", 1 << 14, core.TargetAuto},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var total model.Time
			for i := 0; i < b.N; i++ {
				total += directiveTransferVirtual(b, tc.elems, tc.tgt)
			}
			reportVirtual(b, total)
		})
	}
}

func directiveTransferVirtual(b *testing.B, elems int, tgt core.Target) model.Time {
	b.Helper()
	var out model.Time
	var mu sync.Mutex
	err := spmd.Run(2, model.GeminiLike(), func(rk *spmd.Rank) error {
		comm := mpi.World(rk)
		shm := shmem.New(rk)
		env, err := core.NewEnv(comm, shm)
		if err != nil {
			return err
		}
		defer env.Close()
		buf1 := shmem.MustAlloc[float64](shm, elems)
		buf2 := shmem.MustAlloc[float64](shm, elems)
		comm.Barrier()
		t0 := rk.Now()
		if err := env.P2P(
			core.Sender(0), core.Receiver(1),
			core.SendWhen(rk.ID == 0), core.ReceiveWhen(rk.ID == 1),
			core.SBuf(buf1), core.RBuf(buf2),
			core.WithTarget(tgt),
		); err != nil {
			return err
		}
		maxV := rk.World().Fabric().WorldBarrier().Wait(rk.ID, rk.Now())
		rk.Clock().AdvanceTo(maxV)
		if rk.ID == 0 {
			mu.Lock()
			out = maxV - t0
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkFigureSweeps runs the full cmd/figures pipelines over a short
// sweep, exercising the same code the command uses.
func BenchmarkFigureSweeps(b *testing.B) {
	base := benchParams()
	groups := []int{2, 4}
	b.Run("fig3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunFig3(base, model.GeminiLike(), groups); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fig4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunFig4(base, model.GeminiLike(), groups); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fig5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunFig5(base, model.GeminiLike(), groups, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTopology places the WL-LSMS run on the flat network vs
// an XK7-like 3-D torus with 16 ranks per node (each LSMS instance lands
// on one node, so within-LIZ traffic pays no hops while the master's
// staging crosses the torus).
func BenchmarkAblationTopology(b *testing.B) {
	run := func(b *testing.B, prof *model.Profile) {
		var total model.Time
		for i := 0; i < b.N; i++ {
			total += measureAppProf(b, benchParams(), prof, func(app *wllsms.App) (model.Time, error) {
				return app.DistributeAtoms(wllsms.VariantDirective, core.TargetMPI2Side)
			})
		}
		reportVirtual(b, total)
	}
	b.Run("flat", func(b *testing.B) { run(b, model.GeminiLike()) })
	b.Run("torus-16ranks-per-node", func(b *testing.B) {
		run(b, model.GeminiLike().WithTorus(4, 4, 4, 16, 300*model.Nanosecond, 200*model.Nanosecond))
	})
}

// BenchmarkMixingPhase measures the self-consistency mixing phase (the
// reverse-direction worker->privileged->worker exchange) per variant.
func BenchmarkMixingPhase(b *testing.B) {
	for _, tc := range []struct {
		name string
		v    wllsms.Variant
		tgt  core.Target
	}{
		{"original", wllsms.VariantOriginal, core.TargetDefault},
		{"directive-mpi2side", wllsms.VariantDirective, core.TargetMPI2Side},
		{"directive-shmem", wllsms.VariantDirective, core.TargetSHMEM},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var total model.Time
			for i := 0; i < b.N; i++ {
				total += measureApp(b, benchParams(), func(app *wllsms.App) (model.Time, error) {
					if _, err := app.DistributeAtoms(wllsms.VariantOriginal, core.TargetDefault); err != nil {
						return 0, err
					}
					return app.MixDensities(tc.v, tc.tgt)
				})
			}
			reportVirtual(b, total)
		})
	}
}
