// Transport benchmarks: the same workload on the cooperative virtual-time
// fabric (simnet) and on the parallel shared-memory transport (shm), each
// at several GOMAXPROCS settings. Unlike the figure benchmarks these are
// pure wall-clock numbers — ns/op is the metric, there is no vtime-us/op —
// because the question they answer is about the simulator as a machine:
// how fast does a run complete once ranks may genuinely execute in
// parallel? `make bench-transport` snapshots them into BENCH_transport.json
// and bench-transport-check gates regressions against the committed report.
//
// GOMAXPROCS is swept with explicit p1/p4/p8 sub-benchmarks that set and
// restore the value around the world, not with -cpu: benchjson folds the
// `-N` suffix that -cpu appends into one benchmark name, which would
// collapse the sweep into a single entry.
package commintent

import (
	"fmt"
	"runtime"
	"testing"

	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/spmd"
	"commintent/internal/transport"
	"commintent/internal/wllsms"
)

// transportProcs is the GOMAXPROCS sweep. p1 is the apples-to-apples floor
// (simnet is cooperative and cannot use more than one P); p4 and p8 are
// where the shm transport's rank parallelism pays.
var transportProcs = []int{1, 4, 8}

// benchBothTransports runs body once per transport kind per GOMAXPROCS
// setting, as sub-benchmarks named like simnet/p4. The transport is forced
// through the environment override so the two variants stay distinct even
// when the caller has COMMINTENT_TRANSPORT exported.
func benchBothTransports(b *testing.B, body func(b *testing.B)) {
	for _, kind := range []string{"simnet", "shm"} {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			for _, procs := range transportProcs {
				procs := procs
				b.Run(fmt.Sprintf("p%d", procs), func(b *testing.B) {
					b.Setenv(transport.EnvVar, kind)
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					b.ReportAllocs()
					body(b)
				})
			}
		})
	}
}

// BenchmarkTransportPingpong4K measures one 4 KiB ping-pong (0->1 then
// 1->0, rendezvous-sized payload) per op over a 2-rank world. This is the
// latency shape: almost no compute, every op is one matched exchange, so
// the number is dominated by the per-message control-plane cost — replay
// protocol plus channel handoff on simnet, mailbox push/drain on shm.
func BenchmarkTransportPingpong4K(b *testing.B) {
	benchBothTransports(b, func(b *testing.B) {
		const elems = 512 // 4 KiB of float64
		err := spmd.Run(2, model.GeminiLike(), func(rk *spmd.Rank) error {
			c := mpi.World(rk)
			buf := make([]float64, elems)
			c.Barrier()
			if rk.ID == 0 {
				b.ResetTimer()
			}
			peer := 1 - rk.ID
			for i := 0; i < b.N; i++ {
				if rk.ID == 0 {
					if err := c.Send(buf, elems, mpi.Float64, peer, 0); err != nil {
						return err
					}
					if _, err := c.Recv(buf, elems, mpi.Float64, peer, 1); err != nil {
						return err
					}
				} else {
					if _, err := c.Recv(buf, elems, mpi.Float64, peer, 0); err != nil {
						return err
					}
					if err := c.Send(buf, elems, mpi.Float64, peer, 1); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkTransportAllreduce256 measures a 16-element float64 allreduce
// over 256 ranks per op — the wide-world collective shape, where simnet
// pays the whole-world replay protocol (two barrier waves plus O(n) owner
// arithmetic) on every invocation and shm pays only the messages.
func BenchmarkTransportAllreduce256(b *testing.B) {
	benchBothTransports(b, func(b *testing.B) {
		const n = 256
		err := spmd.Run(n, model.GeminiLike(), func(rk *spmd.Rank) error {
			c := mpi.World(rk)
			in := make([]float64, 16)
			out := make([]float64, 16)
			in[0] = 1
			c.Barrier()
			if rk.ID == 0 {
				b.ResetTimer()
			}
			for i := 0; i < b.N; i++ {
				if err := c.Allreduce(in, out, 16, mpi.Float64, mpi.OpSum); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkTransportFig4 measures one full Figure 4 directive workload
// (atom distribution, spin staging, SetEvec over 33 ranks) per op — the
// end-to-end application shape, mixing pack/unpack compute with two-sided
// traffic. This is the headline ">=2x at GOMAXPROCS>=4" evidence in the
// committed BENCH_transport.json.
func BenchmarkTransportFig4(b *testing.B) {
	benchBothTransports(b, func(b *testing.B) {
		p := benchParams()
		for i := 0; i < b.N; i++ {
			measureApp(b, p, func(app *wllsms.App) (model.Time, error) {
				if _, err := app.DistributeAtoms(wllsms.VariantOriginal, core.TargetDefault); err != nil {
					return 0, err
				}
				if err := stageZeroSpins(app); err != nil {
					return 0, err
				}
				return app.SetEvec(wllsms.VariantDirective, core.TargetMPI2Side)
			})
		}
	})
}
