package commintent

import (
	"sync"
	"testing"

	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	rt "commintent/internal/runtime"
	"commintent/internal/spmd"
	"commintent/internal/wllsms"
)

// fig4Params is the Figure 4 workload at a size where the spin transfer
// actually has something to coalesce: 128 atoms over 16-rank instances means
// the privileged rank sends 8 small (24-byte) vectors to each worker per
// region, exactly the pattern the managed runtime batches.
func fig4Params() wllsms.Params {
	p := wllsms.DefaultParams()
	p.Groups = 2
	p.GroupSize = 16
	p.NumAtoms = 128
	return p
}

// measureFig4Directive runs the committed Figure 4 directive workload —
// unmodified wllsms source, directives and all — under the given runtime
// config and returns the measured SetEvec virtual time plus the world's
// decision-trace fingerprint. Every delivered spin vector is verified, so a
// coalescing bug cannot masquerade as a speedup.
func measureFig4Directive(t *testing.T, p wllsms.Params, cfg rt.Config) (model.Time, *rt.Trace) {
	t.Helper()
	defer rt.Override(cfg)()
	w, err := spmd.NewWorld(p.NProcs(), model.GeminiLike())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var out model.Time
	err = w.Run(func(rk *spmd.Rank) error {
		app, err := wllsms.Setup(rk, p)
		if err != nil {
			return err
		}
		defer app.Close()
		if _, err := app.DistributeAtoms(wllsms.VariantOriginal, core.TargetDefault); err != nil {
			return err
		}
		var spins [][]float64
		if app.Role == wllsms.RoleWL {
			spins = make([][]float64, p.Groups)
			for g := range spins {
				spins[g] = make([]float64, 3*p.NumAtoms)
				for k := range spins[g] {
					spins[g][k] = float64(g*1000 + k)
				}
			}
		}
		if err := app.StageSpins(spins); err != nil {
			return err
		}
		d, err := app.SetEvec(wllsms.VariantDirective, core.TargetMPI2Side)
		if err != nil {
			return err
		}
		if app.Role != wllsms.RoleWL {
			g := app.GroupIdx
			for li, atomIdx := range app.LocalAtoms {
				ev := app.Local[li].Scalars.Evec
				for k := 0; k < 3; k++ {
					if want := float64(g*1000 + 3*atomIdx + k); ev[k] != want {
						t.Errorf("rank %d atom %d evec[%d] = %v, want %v", app.RK.ID, atomIdx, k, ev[k], want)
					}
				}
			}
		}
		if rk.ID == 0 {
			mu.Lock()
			out = d
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := mpi.ManagedTrace(w)
	if !cfg.Enabled() && tr.Len() != 0 {
		t.Errorf("runtime off but trace recorded %d decisions; goldens are no longer bit-identical", tr.Len())
	}
	return out, tr
}

// TestManagedRuntimeFig4Speedup is the headline acceptance gate: enabling
// the managed runtime on the committed Figure 4 directive workload — with
// zero directive edits — must cut the median spin-transfer virtual time by
// at least 1.3x. The workload is virtual-time deterministic, so the "median"
// of repeated runs is the single measured value; determinism itself is
// pinned by TestManagedRuntimeDeterministicTrace below.
func TestManagedRuntimeFig4Speedup(t *testing.T) {
	p := fig4Params()
	off, _ := measureFig4Directive(t, p, rt.Config{})
	on, _ := measureFig4Directive(t, p, rt.Config{Retune: true, Coalesce: true})
	if off <= 0 || on <= 0 {
		t.Fatalf("non-positive virtual times: off=%d on=%d", off, on)
	}
	ratio := float64(off) / float64(on)
	t.Logf("fig4 directive-mpi2side: off=%v on=%v speedup=%.2fx", off, on, ratio)
	if ratio < 1.3 {
		t.Errorf("managed runtime speedup %.2fx < 1.3x (off=%d on=%d)", ratio, off, on)
	}
}

// TestManagedRuntimeDeterministicTrace: same seed, same program, managed
// runtime on → identical virtual times and identical decision traces. This
// is the replayability contract ISSUE 7 requires for post-mortem debugging.
func TestManagedRuntimeDeterministicTrace(t *testing.T) {
	p := fig4Params()
	v1, tr1 := measureFig4Directive(t, p, rt.Config{Retune: true, Coalesce: true})
	v2, tr2 := measureFig4Directive(t, p, rt.Config{Retune: true, Coalesce: true})
	if v1 != v2 {
		t.Errorf("virtual times diverged across same-seed runs: %d != %d", v1, v2)
	}
	if f1, f2 := tr1.Fingerprint(), tr2.Fingerprint(); f1 != f2 {
		t.Errorf("decision traces diverged across same-seed runs: %x != %x", f1, f2)
	}
	if tr1.Len() == 0 {
		t.Error("managed runtime on but the decision trace is empty")
	}
}
