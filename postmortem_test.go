package commintent

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/simnet"
	"commintent/internal/spmd"
)

// TestPostmortemOnRetryGiveup is the forensics contract end to end: a chaos
// run whose retry budget runs out must leave a flight-recorder dump that
// names the failing op, its directive region, and the unmatched frontier —
// the typed error says *that* it failed, the dump says *what* was dying.
func TestPostmortemOnRetryGiveup(t *testing.T) {
	const n = 2
	w, err := spmd.NewWorld(n, model.Uniform(100))
	if err != nil {
		t.Fatal(err)
	}
	cfg := simnet.FaultConfig{Seed: 9, Drop: 1}
	cfg.TagSpan, cfg.UserSpan = mpi.P2PFaultScope()
	w.Fabric().SetFaults(cfg)
	w.Fabric().EnableRecorder(simnet.DefaultRecorderCap)

	errs := make([]error, n)
	if err := w.Run(func(rk *spmd.Rank) error {
		c := mpi.World(rk)
		c.SetWatchdog(2 * time.Second)
		e, err := core.NewEnv(c, nil)
		if err != nil {
			return err
		}
		defer e.Close()
		src, dst := []float64{1}, []float64{-1}
		errs[rk.ID] = e.Parameters(func(r *core.Region) error {
			return r.P2P(
				core.Sender(1-rk.ID), core.Receiver(1-rk.ID),
				core.SBuf(src), core.RBuf(dst),
				core.WithTarget(core.TargetMPI2Side),
			)
		}, core.Label("doomed-exchange"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for r, err := range errs {
		if !errors.Is(err, mpi.ErrMessageLost) {
			t.Errorf("rank %d: err = %v, want wrapped ErrMessageLost", r, err)
		}
	}

	pms := w.Fabric().Postmortems()
	if len(pms) == 0 {
		t.Fatal("retry give-up filed no post-mortem")
	}
	pm := pms[0]

	// The failing op is named, attributed and typed.
	if !strings.HasPrefix(pm.Fail.Op, "comm_p2p") {
		t.Errorf("failing op = %q, want a comm_p2p op", pm.Fail.Op)
	}
	if pm.Fail.Region == 0 {
		t.Error("failing op carries no region attribution")
	}
	if got := pm.Labels[pm.Fail.Region]; got != "doomed-exchange" {
		t.Errorf("region label = %q, want doomed-exchange", got)
	}
	if !strings.Contains(pm.Reason, "retry budget exhausted") &&
		!strings.Contains(pm.Reason, "peer declared dead") {
		t.Errorf("reason = %q, names no give-up cause", pm.Reason)
	}

	// Both sides of the dead transfer are dumped, with their recorded
	// event tails; the injector's verdicts are visible in them.
	if len(pm.Ranks) != n {
		t.Fatalf("dumped %d ranks, want %d", len(pm.Ranks), n)
	}
	sawFault := false
	for _, rd := range pm.Ranks {
		if rd.Recorded == 0 || len(rd.Events) == 0 {
			t.Errorf("rank %d dump is empty", rd.Rank)
		}
		for _, e := range rd.Events {
			if e.Kind == simnet.EvFault {
				sawFault = true
			}
		}
	}
	if !sawFault {
		t.Error("no injector verdict (EvFault) in any dumped event tail")
	}

	// The rendering names the directive, and the dump survives JSON.
	s := pm.String()
	for _, want := range []string{"doomed-exchange", "comm_p2p", "fault"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
	b, err := json.Marshal(pms)
	if err != nil {
		t.Fatal(err)
	}
	var back []*simnet.Postmortem
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back[0].Fail.Region != pm.Fail.Region {
		t.Error("JSON round-trip lost the region attribution")
	}
}

// TestNoPostmortemOnRecoveredRun: per-attempt faults the retry protocol
// absorbs are its normal diet — a run that completes must file nothing.
func TestNoPostmortemOnRecoveredRun(t *testing.T) {
	const n = 2
	w, err := spmd.NewWorld(n, model.Uniform(100))
	if err != nil {
		t.Fatal(err)
	}
	cfg := simnet.FaultConfig{Seed: 5, Drop: 0.3}
	cfg.TagSpan, cfg.UserSpan = mpi.P2PFaultScope()
	w.Fabric().SetFaults(cfg)
	w.Fabric().EnableRecorder(simnet.DefaultRecorderCap)

	if err := w.Run(func(rk *spmd.Rank) error {
		c := mpi.World(rk)
		c.SetWatchdog(5 * time.Second)
		e, err := core.NewEnv(c, nil)
		if err != nil {
			return err
		}
		defer e.Close()
		src, dst := []float64{1}, []float64{-1}
		return e.P2P(
			core.Sender(1-rk.ID), core.Receiver(1-rk.ID),
			core.SBuf(src), core.RBuf(dst),
			core.WithTarget(core.TargetMPI2Side),
		)
	}); err != nil {
		t.Fatal(err)
	}
	if pms := w.Fabric().Postmortems(); len(pms) != 0 {
		t.Fatalf("recovered run filed %d post-mortem(s): %v", len(pms), pms[0].Reason)
	}
}
