package commintent

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
	"time"

	"commintent/internal/coll"
	"commintent/internal/core"
	"commintent/internal/model"
	"commintent/internal/mpi"
	"commintent/internal/simnet"
	"commintent/internal/spmd"
)

// The chaos gate (`make chaos`): a directive-expressed halo exchange swept
// across rank counts and injected drop rates, asserting the hang-proofing
// contract — every iteration completes with correct data or returns a typed
// error, never deadlocks — and pinning the determinism guarantee: same seed,
// same program → bit-identical per-rank virtual times, captured as an FNV
// hash per configuration in the golden. Regenerate only with a deliberate
// cost-model or fault-model change:
//
//	go test -run TestChaosHaloSweep . -update-chaos
var updateChaos = flag.Bool("update-chaos", false, "rewrite testdata/chaos_golden.json from the current implementation")

const chaosGoldenPath = "testdata/chaos_golden.json"

const (
	chaosSeed     = 0xC0FFEE
	chaosIters    = 3
	chaosInterior = 4 // interior cells per rank; field has 2 halo cells more
)

// chaosHalo runs a bidirectional nearest-neighbour halo exchange over a
// dropping fabric, validating the received halos every iteration, and
// returns the per-rank final virtual times.
func chaosHalo(t *testing.T, n int, drop float64, seed uint64) []int64 {
	t.Helper()
	w, err := spmd.NewWorld(n, model.GeminiLike())
	if err != nil {
		t.Fatal(err)
	}
	cfg := simnet.FaultConfig{Seed: seed, Drop: drop}
	cfg.TagSpan, cfg.UserSpan = mpi.P2PFaultScope()
	w.Fabric().SetFaults(cfg)
	edge := func(rank, it int) float64 { return float64(rank*1000 + it) }
	err = w.Run(func(rk *spmd.Rank) error {
		c := mpi.World(rk)
		// The watchdog must only catch genuinely-never-sent traffic; under
		// -race with hundreds of goroutines, give legitimate waits headroom.
		c.SetWatchdog(5 * time.Second)
		e, err := core.NewEnv(c, nil)
		if err != nil {
			return err
		}
		defer e.Close()
		me := rk.ID
		field := make([]float64, chaosInterior+2) // [0]=left halo, [1..interior]=cells, [interior+1]=right halo
		haloL := field[:1]
		haloR := field[chaosInterior+1:]
		for it := 0; it < chaosIters; it++ {
			field[1] = edge(me, it)
			field[chaosInterior] = edge(me, it)
			err := e.Parameters(func(r *core.Region) error {
				// My left edge to the left neighbour's right halo.
				if err := r.P2P(
					core.Sender(me+1), core.Receiver(me-1),
					core.SendWhen(me > 0), core.ReceiveWhen(me < n-1),
					core.SBuf(field[1:2]), core.RBuf(haloR), core.Count(1),
				); err != nil {
					return err
				}
				// My right edge to the right neighbour's left halo.
				return r.P2P(
					core.Sender(me-1), core.Receiver(me+1),
					core.SendWhen(me < n-1), core.ReceiveWhen(me > 0),
					core.SBuf(field[chaosInterior:chaosInterior+1]), core.RBuf(haloL), core.Count(1),
				)
			},
				core.WithTarget(core.TargetMPI2Side),
				core.PlaceSync(core.EndParamRegion),
			)
			if err != nil {
				return fmt.Errorf("iter %d: %w", it, err)
			}
			if me < n-1 && haloR[0] != edge(me+1, it) {
				return fmt.Errorf("iter %d: right halo = %v, want %v", it, haloR[0], edge(me+1, it))
			}
			if me > 0 && haloL[0] != edge(me-1, it) {
				return fmt.Errorf("iter %d: left halo = %v, want %v", it, haloL[0], edge(me-1, it))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("n=%d drop=%g: %v", n, drop, err)
	}
	times := make([]int64, n)
	for r := 0; r < n; r++ {
		times[r] = int64(w.Fabric().Endpoint(r).Clock().Now())
	}
	return times
}

type chaosPin struct {
	Hash string `json:"fnv64_of_rank_times"`
	MaxV int64  `json:"max_virtual_ns"`
}

func pinOf(times []int64) chaosPin {
	h := fnv.New64a()
	var b [8]byte
	var maxV int64
	for _, v := range times {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
		if v > maxV {
			maxV = v
		}
	}
	return chaosPin{Hash: fmt.Sprintf("%016x", h.Sum64()), MaxV: maxV}
}

// TestChaosHaloSweep is the main chaos gate: 64 and 256 ranks at 0%, 1% and
// 5% injected drop. Completion and data correctness are asserted inside
// chaosHalo; the per-rank virtual times of every configuration are pinned
// against the golden, which is what makes the determinism guarantee a
// regression-testable property rather than a comment.
func TestChaosHaloSweep(t *testing.T) {
	got := map[string]chaosPin{}
	for _, n := range []int{64, 256} {
		for _, drop := range []float64{0, 0.01, 0.05} {
			name := fmt.Sprintf("n%d_drop%g", n, drop)
			got[name] = pinOf(chaosHalo(t, n, drop, chaosSeed))
		}
	}
	if *updateChaos {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(chaosGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(chaosGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", chaosGoldenPath)
		return
	}
	data, err := os.ReadFile(chaosGoldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update-chaos on the reference implementation): %v", err)
	}
	want := map[string]chaosPin{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d configs, run produced %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("golden config %s not produced", name)
			continue
		}
		if g != w {
			t.Errorf("%s: pin %+v, golden %+v", name, g, w)
		}
	}
}

// TestChaosSameSeedBitIdentical re-runs one faulty configuration and demands
// the full per-rank time vector match element for element; a different seed
// must produce a different fault pattern.
func TestChaosSameSeedBitIdentical(t *testing.T) {
	a := chaosHalo(t, 64, 0.05, chaosSeed)
	b := chaosHalo(t, 64, 0.05, chaosSeed)
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("rank %d: %d != %d across same-seed runs", r, a[r], b[r])
		}
	}
	c := chaosHalo(t, 64, 0.05, chaosSeed+1)
	same := true
	for r := range a {
		if a[r] != c[r] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seed produced bit-identical times (injector not keyed on seed?)")
	}
}

// chaosHierAllreduce interleaves a retried ring p2p exchange with a forced
// node-leader allreduce on a wrapped-torus placement (64 ranks on a
// 32-rank-capacity torus, so node membership is non-contiguous) under
// injected drops. The p2p traffic is fault-eligible and retried; the
// collective's internal leader traffic is tag-exempt by design, and this run
// proves the two coexist: every iteration's halo and allreduce results are
// exact, and the per-rank virtual times it returns are same-seed
// deterministic.
func chaosHierAllreduce(t *testing.T, n int, drop float64, seed uint64) []int64 {
	t.Helper()
	w, err := spmd.NewWorld(n, model.GeminiLike().WithTorus(2, 2, 2, 4, 300, 200))
	if err != nil {
		t.Fatal(err)
	}
	cfg := simnet.FaultConfig{Seed: seed, Drop: drop}
	cfg.TagSpan, cfg.UserSpan = mpi.P2PFaultScope()
	w.Fabric().SetFaults(cfg)
	edge := func(rank, it int) float64 { return float64(rank*1000 + it) }
	err = w.Run(func(rk *spmd.Rank) error {
		c := mpi.World(rk)
		c.SetWatchdog(5 * time.Second)
		e, err := core.NewEnv(c, nil)
		if err != nil {
			return err
		}
		defer e.Close()
		me := rk.ID
		src, dst := make([]float64, 1), make([]float64, 1)
		in, out := make([]float64, 2), make([]float64, 2)
		for it := 0; it < chaosIters; it++ {
			src[0] = edge(me, it)
			if err := e.P2P(
				core.Sender((me+1)%n), core.Receiver((me+n-1)%n),
				core.SBuf(src), core.RBuf(dst), core.Count(1),
				core.WithTarget(core.TargetMPI2Side),
			); err != nil {
				return fmt.Errorf("iter %d p2p: %w", it, err)
			}
			if want := edge((me+1)%n, it); dst[0] != want {
				return fmt.Errorf("iter %d: ring recv = %v, want %v", it, dst[0], want)
			}
			in[0], in[1] = float64(me%5), 1
			if err := c.Allreduce(in, out, 2, mpi.Float64, mpi.OpSum); err != nil {
				return fmt.Errorf("iter %d allreduce: %w", it, err)
			}
			var wantSum float64
			for r := 0; r < n; r++ {
				wantSum += float64(r % 5)
			}
			if out[0] != wantSum || out[1] != float64(n) {
				return fmt.Errorf("iter %d: allreduce = %v, want [%v %v]", it, out, wantSum, float64(n))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("n=%d drop=%g: %v", n, drop, err)
	}
	times := make([]int64, n)
	for r := 0; r < n; r++ {
		times[r] = int64(w.Fabric().Endpoint(r).Clock().Now())
	}
	return times
}

// TestChaosHierAllreduce is the hierarchical-schedule chaos gate: with
// HierAllreduce forced, the faulty run completes with exact data (asserted
// inside chaosHierAllreduce) and two same-seed runs produce bit-identical
// per-rank virtual times.
func TestChaosHierAllreduce(t *testing.T) {
	restore := coll.Force(coll.HierAllreduce)
	defer restore()
	a := chaosHierAllreduce(t, 64, 0.05, chaosSeed)
	b := chaosHierAllreduce(t, 64, 0.05, chaosSeed)
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("rank %d: %d != %d across same-seed runs", r, a[r], b[r])
		}
	}
}

// TestChaosTotalLossTyped: at 100% drop the retry budget runs out and the
// directive returns a typed ErrMessageLost on both sides — the "fails well"
// half of the contract.
func TestChaosTotalLossTyped(t *testing.T) {
	const n = 2
	w, err := spmd.NewWorld(n, model.Uniform(100))
	if err != nil {
		t.Fatal(err)
	}
	cfg := simnet.FaultConfig{Seed: 9, Drop: 1}
	cfg.TagSpan, cfg.UserSpan = mpi.P2PFaultScope()
	w.Fabric().SetFaults(cfg)
	errs := make([]error, n)
	if err := w.Run(func(rk *spmd.Rank) error {
		c := mpi.World(rk)
		c.SetWatchdog(2 * time.Second)
		e, err := core.NewEnv(c, nil)
		if err != nil {
			return err
		}
		defer e.Close()
		src, dst := []float64{1}, []float64{-1}
		errs[rk.ID] = e.P2P(
			core.Sender(1-rk.ID), core.Receiver(1-rk.ID),
			core.SBuf(src), core.RBuf(dst),
			core.WithTarget(core.TargetMPI2Side),
		)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for r, err := range errs {
		if !errors.Is(err, mpi.ErrMessageLost) {
			t.Errorf("rank %d: err = %v, want wrapped ErrMessageLost", r, err)
		}
	}
}
